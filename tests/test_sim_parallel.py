"""The parallel campaign engine's determinism and merge contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bounded import BoundedController
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.controllers.heuristic import HeuristicController
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.exceptions import ModelError
from repro.sim.campaign import run_campaign
from repro.sim.metrics import (
    NONDETERMINISTIC_FIELDS,
    campaign_fingerprint,
    episode_fingerprint_bytes,
)
from repro.sim.parallel import (
    DEFAULT_CHUNK_SIZE,
    execute_plan,
    plan_campaign,
    seed_to_sequence,
)

INJECTIONS = 24
SEED = 11


def _controllers(system):
    """One instance of every controller archetype (fresh per call)."""
    model = system.model
    return {
        "most_likely": MostLikelyController(model),
        "heuristic_d1": HeuristicController(model, depth=1),
        "bounded_d1": BoundedController(model, depth=1),
        "branch_and_bound": BranchAndBoundController(model, depth=1),
        "oracle": OracleController(model),
    }


def _faults(system):
    return np.array([system.fault_a, system.fault_b])


def _run(system, name, parallel, chunk_size=None):
    controller = _controllers(system)[name]
    result = run_campaign(
        controller,
        fault_states=_faults(system),
        injections=INJECTIONS,
        seed=SEED,
        parallel=parallel,
        chunk_size=chunk_size,
    )
    return controller, result


class TestDeterminismContract:
    @pytest.mark.parametrize(
        "name",
        ["most_likely", "heuristic_d1", "bounded_d1", "branch_and_bound", "oracle"],
    )
    def test_parallel_matches_serial_per_controller(self, simple_system, name):
        """Every controller: serial and sharded runs agree episode-for-episode
        on every deterministic metric field."""
        _, serial = _run(simple_system, name, parallel=None)
        _, sharded = _run(simple_system, name, parallel=2)
        assert len(serial.episodes) == len(sharded.episodes) == INJECTIONS
        for left, right in zip(serial.episodes, sharded.episodes):
            assert episode_fingerprint_bytes(left) == episode_fingerprint_bytes(
                right
            )
        assert campaign_fingerprint(serial.episodes) == campaign_fingerprint(
            sharded.episodes
        )

    def test_worker_count_invariance(self, simple_system):
        """1, 2, and 3 workers produce one and the same fingerprint."""
        prints = {
            workers: campaign_fingerprint(
                _run(simple_system, "bounded_d1", parallel=workers)[1].episodes
            )
            for workers in (None, 1, 2, 3)
        }
        assert len(set(prints.values())) == 1

    def test_chunk_size_is_part_of_the_contract(self, simple_system):
        """Chunk boundaries bound refinement visibility, so changing the
        chunk size may legitimately change a stateful controller's metrics —
        but for a *stateless* controller it must not."""
        small = _run(simple_system, "most_likely", parallel=2, chunk_size=4)[1]
        large = _run(simple_system, "most_likely", parallel=2, chunk_size=16)[1]
        assert campaign_fingerprint(small.episodes) == campaign_fingerprint(
            large.episodes
        )

    def test_reproducible_across_calls(self, simple_system):
        first = _run(simple_system, "heuristic_d1", parallel=2)[1]
        second = _run(simple_system, "heuristic_d1", parallel=2)[1]
        assert campaign_fingerprint(first.episodes) == campaign_fingerprint(
            second.episodes
        )

    def test_algorithm_time_is_excluded_by_design(self):
        assert "algorithm_time" in NONDETERMINISTIC_FIELDS


class TestPlan:
    def test_chunk_layout_is_worker_independent(self, simple_system):
        controller = MostLikelyController(simple_system.model)
        plan = plan_campaign(
            controller, _faults(simple_system), injections=70, seed=3,
            chunk_size=32,
        )
        assert plan.chunks() == [(0, 32), (32, 64), (64, 70)]
        assert plan.injections == 70

    def test_default_chunk_size(self, simple_system):
        controller = MostLikelyController(simple_system.model)
        plan = plan_campaign(
            controller, _faults(simple_system), injections=100, seed=3
        )
        assert plan.chunk_size == DEFAULT_CHUNK_SIZE

    def test_seed_forms_agree(self, simple_system):
        """SeedSequence and int seeds give identical plans."""
        controller = MostLikelyController(simple_system.model)
        by_int = plan_campaign(
            controller, _faults(simple_system), injections=10, seed=5
        )
        by_sequence = plan_campaign(
            controller,
            _faults(simple_system),
            injections=10,
            seed=np.random.SeedSequence(5),
        )
        assert np.array_equal(by_int.faults, by_sequence.faults)

    def test_generator_seed_supported(self):
        sequence = seed_to_sequence(np.random.default_rng(0))
        assert isinstance(sequence, np.random.SeedSequence)

    def test_generator_seed_consumes_stream_deterministically(self):
        """Two generators at the same state yield the same root sequence —
        the entropy comes from the generator's stream, not from ambient
        randomness — and distinct states yield distinct sequences."""
        first = seed_to_sequence(np.random.default_rng(0))
        second = seed_to_sequence(np.random.default_rng(0))
        assert first.entropy == second.entropy
        other = seed_to_sequence(np.random.default_rng(1))
        assert other.entropy != first.entropy

    def test_generator_stays_usable_after_seeding(self):
        """seed_to_sequence draws from the generator but must not close or
        corrupt it."""
        generator = np.random.default_rng(0)
        seed_to_sequence(generator)
        value = generator.integers(0, 10)
        assert 0 <= value < 10

    def test_generator_entropy_has_four_words(self):
        sequence = seed_to_sequence(np.random.default_rng(0))
        assert len(sequence.entropy) == 4
        assert all(0 <= word < 2**63 for word in sequence.entropy)

    def test_seed_sequence_passthrough_is_identity(self):
        sequence = np.random.SeedSequence(42)
        assert seed_to_sequence(sequence) is sequence

    def test_negative_workers_rejected(self, simple_system):
        controller = MostLikelyController(simple_system.model)
        plan = plan_campaign(
            controller, _faults(simple_system), injections=4, seed=0
        )
        with pytest.raises(ValueError):
            execute_plan(plan, workers=-1)


class TestRefinementMerge:
    def test_caller_controller_receives_refinements(self, simple_system):
        """After a parallel campaign the template controller's bound set has
        grown — clones' refinements were folded back."""
        controller, _ = _run(simple_system, "bounded_d1", parallel=2)
        assert controller.bound_set.vectors.shape[0] > 1

    def test_merged_vectors_match_serial_budget(self, simple_system):
        """Parallel merge never admits duplicate hyperplanes: every vector in
        the merged set is unique."""
        controller, _ = _run(simple_system, "bounded_d1", parallel=3)
        vectors = controller.bound_set.vectors
        unique = {row.tobytes() for row in vectors}
        assert len(unique) == vectors.shape[0]

    def test_counters_merge_back(self, simple_system):
        """Diagnostic counters incremented on clones reach the caller."""
        serial_controller, _ = _run(
            simple_system, "branch_and_bound", parallel=None
        )
        sharded_controller, _ = _run(
            simple_system, "branch_and_bound", parallel=2
        )
        for name in BranchAndBoundController.CAMPAIGN_COUNTERS:
            assert getattr(sharded_controller, name) == getattr(
                serial_controller, name
            )

    def test_template_controller_not_consumed(self, simple_system):
        """The engine runs episodes on clones; the template is never mid-
        episode afterwards and can immediately run another campaign."""
        controller, _ = _run(simple_system, "bounded_d1", parallel=2)
        again = run_campaign(
            controller,
            fault_states=_faults(simple_system),
            injections=4,
            seed=1,
        )
        assert again.summary.episodes == 4


class TestMergeSemantics:
    def test_merge_rejects_duplicates_and_dominated(self):
        base = BoundVectorSet(np.array([0.0, 0.0]))
        added = base.merge(
            np.array(
                [
                    [0.0, 0.0],  # exact duplicate of the seed
                    [-1.0, -1.0],  # pointwise-dominated by the seed
                    [1.0, 1.0],  # genuinely better everywhere
                ]
            )
        )
        assert added == 1
        assert base.duplicates >= 1

    def test_merge_prune_after_drops_stale_vectors(self):
        base = BoundVectorSet(np.array([0.0, 0.0]))
        base.merge(np.array([[2.0, 2.0]]), prune_after=True)
        # The all-zero seed is now pointwise-dominated and pruned away.
        assert base.vectors.shape[0] == 1
        assert np.allclose(base.vectors[0], [2.0, 2.0])

    def test_merge_validates_shape(self):
        base = BoundVectorSet(np.array([0.0, 0.0]))
        with pytest.raises(ModelError):
            base.merge(np.array([[1.0, 2.0, 3.0]]))


class TestSharedMemoryHandoff:
    """The shm model handoff: bit-identical fingerprints, no leaks."""

    @staticmethod
    def _sparse_fingerprint(parallel):
        from repro.systems.tiered import build_tiered_system

        system = build_tiered_system(replicas=(2, 2, 2), backend="sparse")
        controller = BoundedController(system.model, depth=1)
        result = run_campaign(
            controller,
            fault_states=system.zombie_states()[:2],
            injections=INJECTIONS,
            seed=SEED,
            parallel=parallel,
        )
        return campaign_fingerprint(result.episodes)

    def test_serial_and_four_workers_bit_identical(self):
        """The acceptance criterion: the sparse model travels to workers
        through shared memory and the campaign fingerprint is unchanged
        for any worker count."""
        from repro.linalg import shm

        serial = self._sparse_fingerprint(None)
        assert self._sparse_fingerprint(4) == serial
        assert self._sparse_fingerprint(2) == serial
        assert shm.leaked_segments() == []

    def test_no_segments_leak_when_a_worker_count_is_one(self):
        from repro.linalg import shm

        self._sparse_fingerprint(1)  # in-process path: no export at all
        assert shm.leaked_segments() == []
