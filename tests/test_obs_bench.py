"""Benchmark snapshot normalisation and perf-regression comparison."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs.__main__ import main
from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchFormatError,
    Metric,
    Snapshot,
    canonical_document,
    compare,
    format_comparison,
    load_snapshot,
    normalize,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PR2 = REPO_ROOT / "BENCH_PR2.json"
BENCH_PR4 = REPO_ROOT / "BENCH_PR4.json"


def _write(path: Path, document: dict) -> Path:
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


def _canonical(metrics: dict[str, Metric]) -> dict:
    return canonical_document(metrics)


class TestNormalize:
    def test_pr2_snapshot_normalises(self):
        snapshot = load_snapshot(BENCH_PR2)
        assert snapshot.schema == "bench-pr2/v1"
        assert any(
            name.startswith("campaign.") and name.endswith(".serial_seconds")
            for name in snapshot.metrics
        )
        assert any(
            name.startswith("ra_solve.") for name in snapshot.metrics
        )
        assert "tree.decisions_per_second" in snapshot.metrics

    def test_pr4_snapshot_normalises(self):
        snapshot = load_snapshot(BENCH_PR4)
        assert snapshot.schema == "bench-pr4/v1"
        assert any(
            name.startswith("backend.tiered") for name in snapshot.metrics
        )
        fingerprints = [
            name for name in snapshot.metrics if name.endswith(".fingerprint")
        ]
        assert fingerprints
        for name in fingerprints:
            assert snapshot.metrics[name].direction == "exact"

    def test_canonical_round_trip(self):
        metrics = {
            "campaign.bounded.serial_seconds": Metric(1.5, "s", "lower"),
            "campaign.bounded.fingerprint": Metric("abc", "sha256", "exact"),
        }
        snapshot = normalize(_canonical(metrics))
        assert snapshot.schema == BENCH_SCHEMA
        assert snapshot.metrics == metrics

    def test_unknown_schema_rejected(self):
        with pytest.raises(BenchFormatError, match="unknown benchmark schema"):
            normalize({"schema": "bench-pr99/v1"})

    def test_bad_direction_rejected(self):
        document = _canonical({})
        document["metrics"]["x"] = {"value": 1, "direction": "sideways"}
        with pytest.raises(BenchFormatError, match="unknown direction"):
            normalize(document)

    def test_missing_file_raises_format_error(self, tmp_path):
        with pytest.raises(BenchFormatError, match="cannot read"):
            load_snapshot(tmp_path / "missing.json")

    def test_non_json_raises_format_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(BenchFormatError, match="not JSON"):
            load_snapshot(path)


class TestCompare:
    def _snapshot(self, **values) -> Snapshot:
        metrics = {
            "latency": Metric(values.get("latency", 1.0), "s", "lower"),
            "throughput": Metric(values.get("throughput", 100.0), "eps/s", "higher"),
            "fingerprint": Metric(values.get("fingerprint", "abc"), "sha256", "exact"),
            "footprint": Metric(values.get("footprint", 1000), "bytes", "info"),
        }
        return Snapshot(schema=BENCH_SCHEMA, metrics=metrics)

    def test_identical_snapshots_are_clean(self):
        result = compare(self._snapshot(), self._snapshot())
        assert result.ok
        assert len(result.rows) == 4

    def test_latency_regression_beyond_threshold_fails(self):
        result = compare(
            self._snapshot(), self._snapshot(latency=1.30), threshold_pct=25
        )
        assert not result.ok
        (regression,) = result.regressions
        assert regression.name == "latency"
        assert regression.change_pct == pytest.approx(30.0)

    def test_latency_drift_within_threshold_passes(self):
        result = compare(
            self._snapshot(), self._snapshot(latency=1.20), threshold_pct=25
        )
        assert result.ok

    def test_throughput_drop_beyond_threshold_fails(self):
        result = compare(
            self._snapshot(), self._snapshot(throughput=70.0), threshold_pct=25
        )
        assert not result.ok
        assert result.regressions[0].name == "throughput"

    def test_faster_is_never_a_regression(self):
        result = compare(
            self._snapshot(),
            self._snapshot(latency=0.1, throughput=500.0),
            threshold_pct=25,
        )
        assert result.ok

    def test_fingerprint_mismatch_fails_at_any_threshold(self):
        result = compare(
            self._snapshot(),
            self._snapshot(fingerprint="zzz"),
            threshold_pct=1e9,
        )
        assert not result.ok
        assert result.regressions[0].name == "fingerprint"

    def test_info_metrics_never_fail(self):
        result = compare(
            self._snapshot(), self._snapshot(footprint=10**9), threshold_pct=1
        )
        assert result.ok

    def test_disjoint_metrics_are_skipped(self):
        old = Snapshot(BENCH_SCHEMA, {"a": Metric(1.0, "s", "lower")})
        new = Snapshot(BENCH_SCHEMA, {"b": Metric(1.0, "s", "lower")})
        result = compare(old, new)
        assert result.rows == []
        assert result.ok

    def test_format_mentions_regression(self):
        result = compare(self._snapshot(), self._snapshot(latency=2.0))
        text = format_comparison(result)
        assert "REGRESSED" in text
        assert "1 regression(s)" in text


class TestCli:
    """Acceptance criteria: self-compare of a committed baseline exits 0;
    an injected 30 % latency regression and a fingerprint flip exit 1;
    an unknown schema exits 2."""

    def test_self_compare_of_pr4_baseline_exits_zero(self, capsys):
        assert main(
            ["bench", "compare", str(BENCH_PR4), str(BENCH_PR4)]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_cross_schema_compare_runs(self, capsys):
        # PR2 vs PR4 share the bounded-campaign fingerprint metrics.
        code = main(["bench", "compare", str(BENCH_PR2), str(BENCH_PR4)])
        out = capsys.readouterr().out
        assert "campaign.bounded_depth_1.fingerprint" in out
        assert code in (0, 1)  # wall-clock drift between PR eras may trip

    def test_injected_thirty_percent_regression_exits_one(
        self, tmp_path, capsys
    ):
        baseline = json.loads(BENCH_PR4.read_text())
        regressed = copy.deepcopy(baseline)
        for row in regressed["backends"]:
            row["sparse_decision_ms"] *= 1.30
        new = _write(tmp_path / "new.json", regressed)
        code = main(
            ["bench", "compare", str(BENCH_PR4), str(new), "--threshold", "25"]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_fingerprint_mismatch_exits_one(self, tmp_path, capsys):
        baseline = json.loads(BENCH_PR4.read_text())
        tampered = copy.deepcopy(baseline)
        tampered["campaign"]["fingerprint"] = "0" * 64
        new = _write(tmp_path / "new.json", tampered)
        assert main(["bench", "compare", str(BENCH_PR4), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_unknown_schema_exits_two(self, tmp_path, capsys):
        bad = _write(tmp_path / "bad.json", {"schema": "bench-pr99/v1"})
        assert main(["bench", "compare", str(BENCH_PR4), str(bad)]) == 2
        assert "unknown benchmark schema" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["bench", "compare", str(BENCH_PR4), str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().out


class TestStoreView:
    """The grid results store as a benchmark trajectory."""

    def _store(self, tmp_path):
        from repro.experiments.store import GRID_SCHEMA, ResultsStore

        store = ResultsStore(tmp_path / "store")
        store.append(
            {
                "schema": GRID_SCHEMA,
                "cell_id": "table1/oracle/seed7/dense/n3",
                "fingerprint": "a" * 64,
                "metrics": {"cost": 84.4},
                "wall_seconds": 0.5,
                "artifact": None,
            }
        )
        store.append(
            {
                "schema": GRID_SCHEMA,
                "cell_id": "fig5/random/seed7/dense/n2",
                "fingerprint": "b" * 64,
                "metrics": {"final_upper_bound": 497.8},
                "wall_seconds": 0.1,
                "artifact": "artifacts/fig5__random__seed7__dense__n2.npz",
            }
        )
        return store

    def test_store_snapshot_marks_fingerprints_exact(self, tmp_path):
        from repro.obs.bench import store_snapshot

        snapshot = store_snapshot(self._store(tmp_path))
        fingerprint = snapshot.metrics[
            "grid.table1.oracle.seed7.dense.n3.fingerprint"
        ]
        assert fingerprint.direction == "exact"
        assert fingerprint.value == "a" * 64
        cost = snapshot.metrics["grid.table1.oracle.seed7.dense.n3.cost"]
        assert cost.direction == "info"

    def test_fingerprint_drift_between_sweeps_regresses(self, tmp_path):
        from repro.obs.bench import store_snapshot

        old = store_snapshot(self._store(tmp_path))
        drifted = self._store(tmp_path)  # same dir: appends duplicates
        drifted.append(
            {
                "schema": "repro-grid/v1",
                "cell_id": "fig5/random/seed7/dense/n2",
                "fingerprint": "c" * 64,
                "metrics": {},
            }
        )
        result = compare(old, store_snapshot(drifted))
        assert [row.name for row in result.regressions] == [
            "grid.fig5.random.seed7.dense.n2.fingerprint"
        ]

    def test_cli_store_renders_and_exports(self, tmp_path, capsys):
        store = self._store(tmp_path)
        out = tmp_path / "snapshot.json"
        code = main(["bench", "store", str(store.root), "--snapshot", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "2 record(s), 2 distinct cell(s)" in text
        document = json.loads(out.read_text())
        assert document["schema"] == BENCH_SCHEMA
        assert main(["bench", "compare", str(out), str(out)]) == 0

    def test_cli_store_rejects_non_directory(self, tmp_path, capsys):
        assert main(["bench", "store", str(tmp_path / "missing")]) == 2
        assert "not a results-store" in capsys.readouterr().out
