"""Declarative construction of recovery models.

The builder assembles the POMDP arrays from named states, actions, and an
observation model, applies the single-step reward composition
``r(s, a) = rbar(s, a) * t_a + rhat(s, a)`` of Section 2, runs the condition
checks, and performs the appropriate Figure 2 augmentation.  The concrete
system models in :mod:`repro.systems` are all expressed through it, and it
is the intended public entry point for users modelling their own systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ModelError

if TYPE_CHECKING:
    from repro.analysis.diagnostics import AnalysisReport
from repro.pomdp.model import POMDP
from repro.recovery.model import (
    RecoveryModel,
    convert_backend,
    make_null_absorbing,
    with_termination_action,
)
from repro.recovery.notification import detect_recovery_notification


@dataclass
class _StateSpec:
    label: str
    rate_cost: float
    null: bool


@dataclass
class _ActionSpec:
    label: str
    duration: float
    transitions: dict[str, dict[str, float]]
    costs: dict[str, float]
    impulse_costs: dict[str, float]
    passive: bool


@dataclass
class RecoveryModelBuilder:
    """Accumulates states, actions, and observations into a RecoveryModel.

    Typical usage::

        builder = RecoveryModelBuilder()
        builder.add_state("null", rate_cost=0.0, null=True)
        builder.add_state("fault(a)", rate_cost=0.5)
        builder.add_action(
            "restart(a)", duration=60.0,
            transitions={"fault(a)": {"null": 1.0}},
        )
        builder.set_observation_matrix(labels, matrix)
        model = builder.build(recovery_notification=False,
                              operator_response_time=21_600.0)

    Transitions default to self-loops for unlisted states.  Action cost in a
    state defaults to ``rate_cost(state) * duration`` (the system keeps
    dropping requests while the action runs); pass explicit per-state
    ``costs`` when an action makes extra components unavailable, and
    ``impulse_costs`` for one-off penalties (the ``rhat`` term).
    """

    _states: list[_StateSpec] = field(default_factory=list)
    _actions: list[_ActionSpec] = field(default_factory=list)
    _observation_labels: tuple[str, ...] | None = None
    _observation_matrix: np.ndarray | None = None
    _per_action_observations: dict[str, np.ndarray] = field(default_factory=dict)
    discount: float = 1.0

    def add_state(
        self, label: str, rate_cost: float = 0.0, null: bool = False
    ) -> "RecoveryModelBuilder":
        """Declare a state with a non-negative cost *rate* (per second)."""
        if rate_cost < 0:
            raise ModelError(
                f"rate_cost is a magnitude and must be >= 0, got {rate_cost}"
            )
        if any(state.label == label for state in self._states):
            raise ModelError(f"duplicate state label {label!r}")
        if null and rate_cost != 0.0:
            raise ModelError(f"null state {label!r} must have zero cost rate")
        self._states.append(_StateSpec(label=label, rate_cost=rate_cost, null=null))
        return self

    def add_action(
        self,
        label: str,
        duration: float,
        transitions: dict[str, dict[str, float]] | None = None,
        costs: dict[str, float] | None = None,
        impulse_costs: dict[str, float] | None = None,
        passive: bool = False,
    ) -> "RecoveryModelBuilder":
        """Declare an action.

        Args:
            label: action name.
            duration: execution time ``t_a`` in seconds.
            transitions: per-origin-state next-state distributions; states
                not listed keep a deterministic self-loop.
            costs: per-state cost *magnitudes* accrued over the whole action
                (overrides the default ``rate_cost * duration``).
            impulse_costs: per-state one-off cost magnitudes (``rhat``).
            passive: True for observe-style actions that never change state.
        """
        if duration < 0:
            raise ModelError(f"duration must be >= 0, got {duration}")
        if any(action.label == label for action in self._actions):
            raise ModelError(f"duplicate action label {label!r}")
        self._actions.append(
            _ActionSpec(
                label=label,
                duration=duration,
                transitions=transitions or {},
                costs=costs or {},
                impulse_costs=impulse_costs or {},
                passive=passive,
            )
        )
        return self

    def set_observation_matrix(
        self,
        labels: tuple[str, ...],
        matrix: np.ndarray,
        action: str | None = None,
    ) -> "RecoveryModelBuilder":
        """Attach observation distributions.

        ``matrix[s, o]`` is ``q(o | s, .)``; rows follow the order in which
        states were added.  Without ``action`` the matrix applies to every
        action (monitor outputs usually depend only on the system state);
        with ``action`` it overrides the default for that action only.
        """
        matrix = np.asarray(matrix, dtype=float)
        if action is None:
            self._observation_labels = tuple(labels)
            self._observation_matrix = matrix
        else:
            if self._observation_labels is not None and tuple(labels) != tuple(
                self._observation_labels
            ):
                raise ModelError("per-action observation labels must match")
            self._per_action_observations[action] = matrix
        return self

    # -- assembly ---------------------------------------------------------

    def _state_index(self) -> dict[str, int]:
        return {state.label: i for i, state in enumerate(self._states)}

    def _assemble_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Raw ``(transitions, observations, rewards, null, rates, durations,
        passive)`` arrays, without stochastic validation.

        Shared by :meth:`build` (which validates via the POMDP constructor)
        and :meth:`analyze` (which reports problems instead of raising).
        """
        if not self._states:
            raise ModelError("no states declared")
        if not self._actions:
            raise ModelError("no actions declared")
        if self._observation_matrix is None:
            raise ModelError("no observation matrix declared")
        index = self._state_index()
        n_states = len(self._states)
        n_actions = len(self._actions)

        transitions = np.zeros((n_actions, n_states, n_states))
        rewards = np.zeros((n_actions, n_states))
        for a, action in enumerate(self._actions):
            for s, state in enumerate(self._states):
                row = action.transitions.get(state.label)
                if row is None:
                    transitions[a, s, s] = 1.0
                else:
                    for target, probability in row.items():
                        if target not in index:
                            raise ModelError(
                                f"action {action.label!r} transitions from "
                                f"{state.label!r} to unknown state {target!r}"
                            )
                        transitions[a, s, index[target]] = probability
                if action.passive and row is not None and (
                    len(row) != 1 or row.get(state.label) != 1.0
                ):
                    raise ModelError(
                        f"passive action {action.label!r} must not change state"
                    )
                rate_cost = action.costs.get(
                    state.label, state.rate_cost * action.duration
                )
                impulse = action.impulse_costs.get(state.label, 0.0)
                if rate_cost < 0 or impulse < 0:
                    raise ModelError(
                        "costs are magnitudes and must be >= 0 "
                        f"(action {action.label!r}, state {state.label!r})"
                    )
                rewards[a, s] = -(rate_cost + impulse)

        observation_matrix = self._observation_matrix
        if observation_matrix.shape[0] != n_states:
            raise ModelError(
                f"observation matrix has {observation_matrix.shape[0]} rows "
                f"for {n_states} states"
            )
        observations = np.broadcast_to(
            observation_matrix,
            (n_actions,) + observation_matrix.shape,
        ).copy()
        for label, matrix in self._per_action_observations.items():
            matching = [
                a for a, action in enumerate(self._actions) if action.label == label
            ]
            if not matching:
                raise ModelError(f"observation override for unknown action {label!r}")
            observations[matching[0]] = matrix

        null_states = np.array([state.null for state in self._states])
        rate_rewards = -np.array([state.rate_cost for state in self._states])
        durations = np.array([action.duration for action in self._actions])
        passive = np.array([action.passive for action in self._actions])
        return (
            transitions,
            observations,
            rewards,
            null_states,
            rate_rewards,
            durations,
            passive,
        )

    def _assemble_pomdp(
        self,
    ) -> tuple[POMDP, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        (
            transitions,
            observations,
            rewards,
            null_states,
            rate_rewards,
            durations,
            passive,
        ) = self._assemble_arrays()
        pomdp = POMDP(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=tuple(state.label for state in self._states),
            action_labels=tuple(action.label for action in self._actions),
            observation_labels=self._observation_labels,
            discount=self.discount,
        )
        return pomdp, null_states, rate_rewards, durations, passive

    def analyze(
        self,
        recovery_notification: bool | None = None,
        operator_response_time: float | None = None,
    ) -> "AnalysisReport":
        """Static-analysis report for the model this builder would build.

        Performs the same Figure 2 augmentation as :meth:`build` on *raw*
        arrays, then runs every analyzer pass — so a declaration whose
        transitions do not even sum to one yields a complete diagnostic
        report (R001 alongside any condition violations) instead of the
        first :class:`~repro.exceptions.ModelError`.  Raises only for API
        misuse (no states/actions, missing observation matrix or
        ``operator_response_time``), exactly as :meth:`build` would.
        """
        from repro.analysis.passes import analyze
        from repro.analysis.view import ModelView
        from repro.recovery.model import (
            TERMINATE_LABEL,
            null_absorbing_arrays,
            termination_arrays,
        )

        (
            transitions,
            observations,
            rewards,
            null_states,
            rate_rewards,
            _durations,
            _passive,
        ) = self._assemble_arrays()
        state_labels = tuple(state.label for state in self._states)
        action_labels = tuple(action.label for action in self._actions)
        observation_labels = self._observation_labels or ()
        if recovery_notification is None:
            probe = ModelView(
                transitions=transitions,
                rewards=rewards,
                observations=observations,
                discount=self.discount,
            )
            recovery_notification = detect_recovery_notification(
                probe, null_states
            )

        if recovery_notification:
            if operator_response_time is not None:
                raise ModelError(
                    "operator_response_time is only used without recovery "
                    "notification"
                )
            transitions, rewards = null_absorbing_arrays(
                transitions, rewards, null_states
            )
            view = ModelView(
                transitions=transitions,
                rewards=rewards,
                observations=observations,
                state_labels=state_labels,
                action_labels=action_labels,
                observation_labels=observation_labels,
                discount=self.discount,
                null_states=null_states,
                rate_rewards=rate_rewards,
                recovery_notification=True,
            )
        else:
            if operator_response_time is None:
                raise ModelError(
                    "models without recovery notification need an "
                    "operator_response_time to derive termination rewards"
                )
            transitions, observations, rewards = termination_arrays(
                transitions,
                observations,
                rewards,
                null_states,
                rate_rewards,
                operator_response_time,
            )
            view = ModelView(
                transitions=transitions,
                rewards=rewards,
                observations=observations,
                state_labels=state_labels + (TERMINATE_LABEL,),
                action_labels=action_labels + (TERMINATE_LABEL,),
                observation_labels=observation_labels,
                discount=self.discount,
                null_states=np.append(null_states, False),
                rate_rewards=np.append(rate_rewards, 0.0),
                recovery_notification=False,
                terminate_state=len(state_labels),
                terminate_action=len(action_labels),
                operator_response_time=operator_response_time,
            )
        return analyze(view, title="builder model (pre-build report)")

    def build(
        self,
        recovery_notification: bool | None = None,
        operator_response_time: float | None = None,
        backend: str = "dense",
    ) -> RecoveryModel:
        """Assemble, check conditions, augment, and return a RecoveryModel.

        Args:
            recovery_notification: whether monitors reveal entry into
                ``S_phi``.  ``None`` auto-detects from the observation
                function (:func:`detect_recovery_notification`).
            operator_response_time: ``t_op`` in seconds; required (and only
                meaningful) for models without recovery notification.
            backend: ``"dense"`` (default), ``"sparse"``, or ``"auto"``;
                non-dense resolutions convert the finished model losslessly
                via :func:`repro.recovery.convert_backend`.
        """
        pomdp, null_states, rate_rewards, durations, passive = self._assemble_pomdp()
        if recovery_notification is None:
            recovery_notification = detect_recovery_notification(pomdp, null_states)

        if recovery_notification:
            if operator_response_time is not None:
                raise ModelError(
                    "operator_response_time is only used without recovery "
                    "notification"
                )
            augmented = make_null_absorbing(pomdp, null_states)
            model = RecoveryModel(
                pomdp=augmented,
                null_states=null_states,
                rate_rewards=rate_rewards,
                durations=durations,
                passive_actions=passive,
                recovery_notification=True,
            )
            return convert_backend(model, backend)

        if operator_response_time is None:
            raise ModelError(
                "models without recovery notification need an "
                "operator_response_time to derive termination rewards"
            )
        augmented, terminate_state, terminate_action = with_termination_action(
            pomdp, null_states, rate_rewards, operator_response_time
        )
        model = RecoveryModel(
            pomdp=augmented,
            null_states=np.append(null_states, False),
            rate_rewards=np.append(rate_rewards, 0.0),
            durations=np.append(durations, 0.0),
            passive_actions=np.append(passive, False),
            recovery_notification=False,
            terminate_state=terminate_state,
            terminate_action=terminate_action,
            operator_response_time=operator_response_time,
        )
        return convert_backend(model, backend)
