"""Benchmarks for the POMDP solver substrate.

Not a paper artifact — performance tracking for the reference solvers the
reproduction is validated against (Monahan exact VI, Perseus PBVI, HSVI),
plus the reachable-belief-MDP expansion used by the test oracle.  All run
on the discounted two-server example where the exact solution is known.
"""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.pomdp.belief_mdp import expand_belief_mdp, solve_belief_mdp
from repro.pomdp.exact import solve_exact
from repro.pomdp.hsvi import solve_hsvi
from repro.pomdp.pbvi import solve_pbvi
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="module")
def discounted_pomdp():
    return build_simple_system(
        recovery_notification=False, discount=0.85
    ).model.pomdp


def test_monahan_exact(benchmark, discounted_pomdp):
    """Exact value iteration to a 1e-4 certificate."""
    solution = benchmark.pedantic(
        solve_exact, args=(discounted_pomdp,), kwargs={"tol": 1e-4},
        rounds=1, iterations=1,
    )
    assert solution.error_bound <= 1e-4
    benchmark.extra_info["alpha_vectors"] = int(solution.vectors.shape[0])


def test_pbvi(benchmark, discounted_pomdp):
    """Perseus PBVI on 64 sampled points."""
    solution = benchmark.pedantic(
        solve_pbvi,
        args=(discounted_pomdp,),
        kwargs={"n_points": 64, "seed": 0},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["alpha_vectors"] = int(solution.vectors.shape[0])
    benchmark.extra_info["iterations"] = solution.iterations


def test_hsvi(benchmark, discounted_pomdp):
    """HSVI to a 0.05 certified gap at the uniform belief."""
    solution = benchmark.pedantic(
        solve_hsvi,
        args=(discounted_pomdp,),
        kwargs={"epsilon": 0.05},
        rounds=1,
        iterations=1,
    )
    assert solution.gap <= 0.05
    benchmark.extra_info["trials"] = solution.trials


def test_belief_mdp_expansion_and_solve(benchmark, discounted_pomdp):
    """Horizon-4 reachable-belief enumeration plus value iteration."""
    initial = np.full(discounted_pomdp.n_states, 1.0 / discounted_pomdp.n_states)
    leaf = BoundVectorSet(ra_bound_vector(discounted_pomdp))

    def run():
        belief_mdp = expand_belief_mdp(
            discounted_pomdp, initial, horizon=4, max_beliefs=1_000
        )
        return belief_mdp, solve_belief_mdp(belief_mdp, leaf)

    belief_mdp, values = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.all(np.isfinite(values))
    benchmark.extra_info["beliefs"] = belief_mdp.n_beliefs
