"""Model-mismatch robustness (the introduction's imprecise-knowledge theme).

The paper evaluates the controller under a *correct* model: the
environment's dynamics are exactly the POMDP the controller plans with.
Real monitors drift.  This experiment runs the bounded controller with a
model built for one path-monitor coverage against an environment whose
actual coverage differs, and measures how recovery quality degrades.

Headline finding (asserted by the test suite): the never-give-up behaviour
of Table 1 does *not* survive overtrust.  A controller whose model claims
perfect probe coverage treats an all-clear reading as near-proof of
recovery; when the real monitors miss half the time, it sometimes
terminates with the fault still live.  Modelling monitors *pessimistically*
(model coverage at or below reality) is therefore the safe direction — a
practical deployment guideline the paper's correct-model evaluation cannot
exhibit.

The mechanics exercise :func:`repro.sim.campaign.run_campaign`'s ``model``
parameter (environment-side model distinct from the controller's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.sim.campaign import run_campaign
from repro.sim.metrics import MetricSummary
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind
from repro.util.tables import render_table


@dataclass(frozen=True)
class MismatchPoint:
    """One controller-vs-environment coverage pairing."""

    model_coverage: float
    environment_coverage: float
    summary: MetricSummary


def run_mismatch_sweep(
    model_coverage: float = 1.0,
    environment_coverages: tuple[float, ...] = (1.0, 0.9, 0.75, 0.5),
    injections: int = 200,
    seed: int = 7,
    parallel: int | None = None,
) -> list[MismatchPoint]:
    """Fix the controller's model, degrade the real monitors underneath it.

    The controller plans with ``model_coverage``; each sweep point runs the
    campaign against an environment whose path monitors actually achieve
    ``environment_coverage``.  Observations the controller's model deems
    impossible trigger its re-diagnosis fallback
    (:meth:`RecoveryController.observe`), so the sweep also exercises that
    path when the model says coverage is perfect but probes miss.
    ``parallel`` shards each campaign across worker processes without
    changing any deterministic metric (see :mod:`repro.sim.parallel`).
    """
    controller_system = build_emn_system(path_monitor_coverage=model_coverage)
    bound_set, _ = bootstrap_bounds(
        controller_system.model, iterations=10, depth=2, variant="average",
        seed=0,
    )
    points = []
    for coverage in environment_coverages:
        environment_system = build_emn_system(path_monitor_coverage=coverage)
        controller = BoundedController(
            controller_system.model,
            depth=1,
            bound_set=bound_set,
            refine_min_improvement=1.0,
        )
        result = run_campaign(
            controller,
            fault_states=environment_system.fault_states(FaultKind.ZOMBIE),
            injections=injections,
            seed=seed,
            monitor_tail=MONITOR_DURATION,
            model=environment_system.model,
            parallel=parallel,
        )
        points.append(
            MismatchPoint(
                model_coverage=model_coverage,
                environment_coverage=coverage,
                summary=result.summary,
            )
        )
    return points


def format_mismatch(points: list[MismatchPoint]) -> str:
    """Render the sweep as a table."""
    rows = [
        [
            point.model_coverage,
            point.environment_coverage,
            point.summary.cost,
            point.summary.residual_time,
            point.summary.actions,
            point.summary.monitor_calls,
            point.summary.early_terminations,
            point.summary.unrecovered,
        ]
        for point in points
    ]
    return render_table(
        ["Model cov.", "Actual cov.", "Cost", "Residual (s)", "Actions",
         "Monitor calls", "Early terms", "Unrecovered"],
        rows,
        title=(
            "Model-mismatch robustness: bounded controller planning with "
            "one\npath-monitor coverage while the real monitors achieve "
            "another"
        ),
    )
