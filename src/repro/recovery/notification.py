"""Recovery-notification detection from the observation function.

Section 3.1: "We believe that it is possible to automatically determine
whether a system has recovery notification by examining the observation
function q, but we leave details to future work."  This module implements
the natural criterion: a system has recovery notification exactly when
observations *separate* the null-fault set from its complement — every
observation that can be generated in some null state can never be generated
in a fault state (and vice versa), under every action.  When that holds, any
single monitor reading tells the controller with certainty whether the
system has recovered.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.linalg.containers import SparseObservations
from repro.pomdp.model import POMDP

#: Observation probabilities below this count as "cannot be generated".
SUPPORT_EPSILON = 1e-12


def _require_dense(pomdp) -> None:
    # Duck-typed: callers also pass analyzer ModelViews, which carry the
    # same tensor attributes but no backend property.
    if isinstance(pomdp.observations, SparseObservations):
        raise ModelError(
            "recovery-notification detection scans the full observation "
            "tensor and requires the dense backend; pass "
            "recovery_notification explicitly when building sparse models, "
            "or detect on the dense model before converting"
        )


def detect_recovery_notification(
    pomdp: POMDP, null_states: np.ndarray
) -> bool:
    """True when ``q`` lets the controller detect entry into ``S_phi``.

    For every action ``a`` and observation ``o``, the support
    ``{s : q(o|s,a) > 0}`` must lie entirely inside ``S_phi`` or entirely
    outside it.  If some observation can be produced both by a null state
    and by a fault state (e.g. "all monitors clear" while a zombie is being
    routed around, as in the EMN system of Section 5), the controller can
    never be certain recovery has completed and the model needs the
    terminate-action augmentation instead.
    """
    mask = np.asarray(null_states, dtype=bool)
    if mask.shape != (pomdp.n_states,):
        raise ModelError(
            f"null_states must be a mask of length {pomdp.n_states}"
        )
    _require_dense(pomdp)
    for action in range(pomdp.n_actions):
        support = pomdp.observations[action] > SUPPORT_EPSILON  # (|S|, |O|)
        in_null = support[mask].any(axis=0)  # per observation
        in_fault = support[~mask].any(axis=0)
        if np.any(in_null & in_fault):
            return False
    return True


def ambiguous_observations(
    pomdp: POMDP, null_states: np.ndarray
) -> list[tuple[int, int]]:
    """The ``(action, observation)`` pairs that break notification.

    Diagnostic companion to :func:`detect_recovery_notification`: each
    returned pair is an observation that both some null state and some fault
    state can generate under that action.
    """
    mask = np.asarray(null_states, dtype=bool)
    _require_dense(pomdp)
    pairs: list[tuple[int, int]] = []
    for action in range(pomdp.n_actions):
        support = pomdp.observations[action] > SUPPORT_EPSILON
        in_null = support[mask].any(axis=0)
        in_fault = support[~mask].any(axis=0)
        for observation in np.flatnonzero(in_null & in_fault):
            pairs.append((action, int(observation)))
    return pairs
