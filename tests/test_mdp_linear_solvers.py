"""Tests for repro.mdp.linear_solvers."""

import numpy as np
import pytest

from repro.exceptions import DivergenceError
from repro.mdp.linear_solvers import (
    gauss_seidel,
    jacobi,
    solve_direct,
    solve_markov_reward,
)

# Absorbing chain: state 0 -> {0 w.p. .5, 1 w.p. .5}, state 1 absorbing.
CHAIN = np.array([[0.5, 0.5], [0.0, 1.0]])
REWARD = np.array([-1.0, 0.0])
# Expected accumulated reward from state 0: -1 * E[steps] = -2.
EXPECTED = np.array([-2.0, 0.0])


class TestAgreementAcrossSolvers:
    def test_gauss_seidel(self):
        assert np.allclose(gauss_seidel(CHAIN, REWARD), EXPECTED, atol=1e-8)

    def test_jacobi(self):
        assert np.allclose(jacobi(CHAIN, REWARD), EXPECTED, atol=1e-8)

    def test_direct_with_transient_mask(self):
        out = solve_direct(
            CHAIN, REWARD, transient_states=np.array([True, False])
        )
        assert np.allclose(out, EXPECTED, atol=1e-10)

    def test_front_door_dispatch(self):
        for method in ("gauss-seidel", "jacobi"):
            out = solve_markov_reward(CHAIN, REWARD, method=method)
            assert np.allclose(out, EXPECTED, atol=1e-8)
        out = solve_markov_reward(
            CHAIN,
            REWARD,
            method="direct",
            transient_states=np.array([True, False]),
        )
        assert np.allclose(out, EXPECTED, atol=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            solve_markov_reward(CHAIN, REWARD, method="magic")


class TestSOR:
    def test_over_relaxation_converges_to_same_answer(self):
        for omega in (0.8, 1.0, 1.3):
            out = gauss_seidel(CHAIN, REWARD, omega=omega)
            assert np.allclose(out, EXPECTED, atol=1e-8)

    def test_invalid_omega_rejected(self):
        with pytest.raises(ValueError, match="omega"):
            gauss_seidel(CHAIN, REWARD, omega=2.5)


class TestDiscounted:
    def test_discounted_absorbing_with_reward(self):
        # Recurrent state with reward -1 and discount 0.5: value = -2.
        chain = np.array([[1.0]])
        reward = np.array([-1.0])
        for solver in (gauss_seidel, jacobi):
            out = solver(chain, reward, discount=0.5)
            assert np.allclose(out, [-2.0], atol=1e-8)
        out = solve_direct(chain, reward, discount=0.5)
        assert np.allclose(out, [-2.0], atol=1e-10)


class TestDivergence:
    def test_absorbing_reward_state_diverges(self):
        chain = np.array([[1.0]])
        reward = np.array([-1.0])
        with pytest.raises(DivergenceError):
            gauss_seidel(chain, reward)
        with pytest.raises(DivergenceError):
            jacobi(chain, reward)

    def test_recurrent_class_with_reward_diverges(self):
        # Two states cycling forever, both accruing cost.
        chain = np.array([[0.0, 1.0], [1.0, 0.0]])
        reward = np.array([-1.0, -1.0])
        with pytest.raises(DivergenceError):
            jacobi(chain, reward)

    def test_slow_linear_divergence_detected(self):
        # A long transient runway into a cost-accruing recurrent state:
        # residuals stall instead of blowing up; the stagnation check must
        # catch it within a couple of windows, not after 1e12 cost.
        chain = np.array([[0.9, 0.1], [0.0, 1.0]])
        reward = np.array([0.0, -0.001])
        with pytest.raises(DivergenceError):
            jacobi(chain, reward, max_iterations=50_000)


class TestDirectSolver:
    def test_no_transient_states_returns_zero(self):
        out = solve_direct(
            np.array([[1.0]]), np.array([0.0]),
            transient_states=np.array([False]),
        )
        assert np.allclose(out, [0.0])

    def test_full_solve_discounted(self):
        out = solve_direct(CHAIN, REWARD, discount=0.9)
        manual = np.linalg.solve(np.eye(2) - 0.9 * CHAIN, REWARD)
        assert np.allclose(out, manual)
