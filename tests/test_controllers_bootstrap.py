"""Tests for the bootstrapping phase (Section 4.1)."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bootstrap import bootstrap_bounds, reference_belief


class TestReferenceBelief:
    def test_uniform_over_original_states(self, simple_system):
        belief = reference_belief(simple_system.model)
        terminate = simple_system.model.terminate_state
        assert belief[terminate] == 0.0
        live = np.delete(belief, terminate)
        assert np.allclose(live, 1.0 / live.size)

    def test_notified_model_uniform_over_all(self, simple_notified_system):
        belief = reference_belief(simple_notified_system.model)
        assert np.allclose(belief, 1.0 / belief.size)


class TestBootstrapBounds:
    @pytest.mark.parametrize("variant", ["random", "average"])
    def test_bounds_improve_monotonically(self, simple_system, variant):
        _, result = bootstrap_bounds(
            simple_system.model, iterations=8, variant=variant, seed=0
        )
        series = np.concatenate([[result.initial_bound], result.bound_values])
        assert np.all(np.diff(series) >= -1e-9)

    def test_cost_upper_bounds_negated(self, simple_system):
        _, result = bootstrap_bounds(
            simple_system.model, iterations=3, seed=0
        )
        assert np.allclose(result.cost_upper_bounds, -result.bound_values)

    def test_vector_growth_bounded_by_updates(self, simple_system):
        bound_set, result = bootstrap_bounds(
            simple_system.model, iterations=6, seed=1, min_improvement=0.0
        )
        growth = np.diff(np.concatenate([[1], result.vector_counts]))
        assert np.all(growth <= result.update_counts)
        assert len(bound_set) == result.vector_counts[-1]

    def test_reuses_supplied_bound_set(self, simple_system):
        seed_set = BoundVectorSet(ra_bound_vector(simple_system.model.pomdp))
        bound_set, _ = bootstrap_bounds(
            simple_system.model, bound_set=seed_set, iterations=2, seed=0
        )
        assert bound_set is seed_set

    def test_zero_iterations(self, simple_system):
        bound_set, result = bootstrap_bounds(
            simple_system.model, iterations=0, seed=0
        )
        assert len(bound_set) == 1
        assert result.bound_values.size == 0

    def test_invalid_variant_rejected(self, simple_system):
        with pytest.raises(ValueError, match="variant"):
            bootstrap_bounds(simple_system.model, variant="other")

    def test_negative_iterations_rejected(self, simple_system):
        with pytest.raises(ValueError):
            bootstrap_bounds(simple_system.model, iterations=-1)

    def test_reproducible_with_seed(self, simple_system):
        _, first = bootstrap_bounds(simple_system.model, iterations=5, seed=9)
        _, second = bootstrap_bounds(simple_system.model, iterations=5, seed=9)
        assert np.allclose(first.bound_values, second.bound_values)
        assert np.array_equal(first.vector_counts, second.vector_counts)

    def test_works_on_notified_model(self, simple_notified_system):
        bound_set, result = bootstrap_bounds(
            simple_notified_system.model, iterations=4, seed=2
        )
        assert np.all(np.isfinite(result.bound_values))

    def test_emn_bootstrap_improves(self, emn_system):
        _, result = bootstrap_bounds(
            emn_system.model, iterations=4, depth=1, variant="average", seed=0
        )
        # The RA-Bound at the uniform belief is thousands of dropped
        # requests; a few refinements should reclaim most of that.
        assert result.cost_upper_bounds[-1] < -result.initial_bound * 0.5
