"""Tests for the branch-and-bound controller (paper's future work)."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bounded import BoundedController
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.sim.campaign import run_campaign
from repro.systems.faults import FaultKind


class TestConstruction:
    def test_default_bounds_seeded(self, simple_system):
        controller = BranchAndBoundController(simple_system.model)
        assert len(controller.lower) == 1
        assert len(controller.upper) == 0

    def test_invalid_depth_rejected(self, simple_system):
        with pytest.raises(ValueError):
            BranchAndBoundController(simple_system.model, depth=0)


class TestDecisionSoundness:
    def test_agrees_with_bounded_controller(self, simple_system):
        """Pruning must not change the selected action (up to value ties)."""
        pomdp = simple_system.model.pomdp
        shared = BoundVectorSet(ra_bound_vector(pomdp))
        bounded = BoundedController(
            simple_system.model, depth=1, bound_set=shared, refine_online=False
        )
        pruned = BranchAndBoundController(
            simple_system.model, depth=1, lower=shared, refine_online=False
        )
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=40):
            bounded.reset(initial_belief=belief)
            pruned.reset(initial_belief=belief)
            a = bounded.decide()
            b = pruned.decide()
            # Values must agree; actions may differ only on exact ties.
            assert np.isclose(a.value, b.value, atol=1e-9)

    def test_prunes_something(self, simple_system):
        controller = BranchAndBoundController(
            simple_system.model, depth=2, refine_online=False
        )
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.fault_a] = 1.0
        controller.reset(initial_belief=belief)
        controller.decide()
        assert controller.pruned_actions > 0
        assert controller.expanded_actions > 0

    def test_terminates_on_recovered_belief(self, simple_system):
        controller = BranchAndBoundController(simple_system.model, depth=1)
        n = simple_system.model.pomdp.n_states
        belief = np.zeros(n)
        belief[simple_system.null_state] = 1.0
        controller.reset(initial_belief=belief)
        assert controller.decide().is_terminate


class TestEndToEnd:
    def test_recovers_on_simple_system(self, simple_system):
        controller = BranchAndBoundController(simple_system.model, depth=1)
        result = run_campaign(
            controller,
            fault_states=np.array(
                [simple_system.fault_a, simple_system.fault_b]
            ),
            injections=40,
            seed=13,
        )
        assert result.summary.unrecovered == 0
        assert result.summary.early_terminations == 0

    def test_recovers_on_emn(self, emn_system):
        controller = BranchAndBoundController(
            emn_system.model, depth=1, refine_min_improvement=1.0
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=15,
            seed=13,
            monitor_tail=5.0,
        )
        assert result.summary.unrecovered == 0
        assert controller.pruned_actions > 0

    def test_notified_model_supported(self, simple_notified_system):
        controller = BranchAndBoundController(
            simple_notified_system.model, depth=1
        )
        result = run_campaign(
            controller,
            fault_states=np.array(
                [
                    simple_notified_system.fault_a,
                    simple_notified_system.fault_b,
                ]
            ),
            injections=20,
            seed=5,
        )
        assert result.summary.unrecovered == 0
