"""Sparse model containers — the storage side of the backend abstraction.

The dense backend stores a POMDP as three ndarrays: transitions
``(|A|, |S|, |S|)``, observations ``(|A|, |S|, |O|)`` and rewards
``(|A|, |S|)``.  On the tiered recovery family those tensors are
infeasible long before the 300,002-state acceptance point (the transition
tensor alone would be hundreds of terabytes), yet almost all of their
content is *shared structure*: every action leaves most states untouched,
every action observes through the same monitor suite, and every reward is
"rate times duration plus a probe fee" with a handful of exceptions.

The three containers here store exactly that shared structure plus the
exceptions:

* :class:`SparseTransitions` — one base CSR matrix plus per-action *row
  overrides* (action ``a`` behaves like ``base`` with a few rows replaced).
* :class:`SparseObservations` — one base CSR matrix plus per-action
  *whole-matrix* overrides (only the terminate action observes
  differently).
* :class:`StructuredRewards` — the rank-one form
  ``r[a, s] = time_scale[a] * rate[s] - fixed[a]`` plus sparse
  *replacement* overrides.  Scalar lookups return the stored replacement
  bit-for-bit (simulated costs feed campaign fingerprints), while batched
  products use a precomputed additive-delta matrix.

Everything here is pure storage + linear algebra; backend selection and
dispatch live in :mod:`repro.linalg.backends` / :mod:`repro.linalg.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError
from repro.util.validation import NEGATIVITY_ATOL, SUM_ATOL


def _rebuild_from_state(cls, state):
    """Default-pickling reconstructor for the frozen containers.

    Restores the instance ``__dict__`` directly (bypassing the frozen
    ``__setattr__``), exactly like protocol-2 pickling did before the
    containers grew shared-memory-aware ``__reduce__`` hooks.
    """
    self = object.__new__(cls)
    self.__dict__.update(state)
    return self


def _as_csr(matrix, shape=None) -> sp.csr_matrix:
    """Coerce ``matrix`` to canonical CSR (sorted indices, no duplicates)."""
    csr = sp.csr_matrix(matrix, shape=shape)
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


#: Fibonacci-hash multiplier for :func:`csr_row_hashes` (2^64 / phi).
_HASH_PRIME = np.uint64(0x9E3779B97F4A7C15)


def csr_row_hashes(matrix: sp.csr_matrix) -> np.ndarray:
    """Order-insensitive ``uint64`` content hash of every CSR row.

    Two rows with identical ``(column, value)`` entry sets hash equally
    (explicit zeros are dropped first, so padding does not perturb the
    hash).  Collisions are possible — callers group rows by hash and then
    compare candidate groups exactly — which keeps the duplicate-action
    pass O(|rows|) instead of O(|rows|^2).
    """
    cleaned = matrix.tocsr(copy=True)
    cleaned.eliminate_zeros()
    hashes = np.zeros(cleaned.shape[0], dtype=np.uint64)
    if cleaned.nnz:
        mixed = (
            (cleaned.indices.astype(np.uint64) + np.uint64(1)) * _HASH_PRIME
        ) ^ cleaned.data.astype(np.float64).view(np.uint64)
        row_nnz = np.diff(cleaned.indptr)
        occupied = np.flatnonzero(row_nnz)
        sums = np.add.reduceat(mixed, cleaned.indptr[occupied])
        hashes[occupied] = sums * _HASH_PRIME + row_nnz[occupied].astype(np.uint64)
    return hashes


def _check_rows_stochastic(rows: sp.csr_matrix, labels: np.ndarray, name: str) -> None:
    """Validate that every row of CSR ``rows`` is a distribution.

    ``labels`` maps local row numbers to reportable identifiers.
    """
    if rows.nnz and rows.data.min() < -NEGATIVITY_ATOL:
        raise ModelError(f"{name} has negative entries: min={rows.data.min():.3g}")
    sums = np.asarray(rows.sum(axis=1)).ravel()
    bad = np.flatnonzero(~np.isclose(sums, 1.0, atol=SUM_ATOL))
    if bad.size:
        shown = np.asarray(labels)[bad][:8]
        raise ModelError(
            f"{name} rows {shown.tolist()} do not sum to 1 "
            f"(sums {sums[bad][:8].tolist()})"
        )


@dataclass(frozen=True)
class SparseTransitions:
    """Per-action transition matrices as ``base`` + row overrides.

    Action ``a`` is ``base`` with the rows listed in
    ``row_state[action_ptr[a]:action_ptr[a + 1]]`` replaced by the matching
    rows of ``rows``.  ``row_action`` must be sorted ascending so per-action
    override blocks are contiguous slices.
    """

    base: sp.csr_matrix
    row_action: np.ndarray
    row_state: np.ndarray
    rows: sp.csr_matrix
    n_actions: int
    _action_ptr: np.ndarray = field(init=False, repr=False, compare=False)
    _cache: dict = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", _as_csr(self.base))
        object.__setattr__(
            self, "row_action", np.asarray(self.row_action, dtype=np.int64)
        )
        object.__setattr__(
            self, "row_state", np.asarray(self.row_state, dtype=np.int64)
        )
        n_states = self.base.shape[0]
        if self.base.shape != (n_states, n_states):
            raise ModelError(f"transition base must be square, got {self.base.shape}")
        object.__setattr__(
            self, "rows", _as_csr(self.rows, shape=(len(self.row_action), n_states))
        )
        if self.row_action.shape != self.row_state.shape:
            raise ModelError("row_action and row_state must align")
        if np.any(np.diff(self.row_action) < 0):
            raise ModelError("row_action must be sorted ascending")
        if self.row_action.size > 1:
            same_action = np.diff(self.row_action) == 0
            if np.any(same_action & (np.diff(self.row_state) <= 0)):
                raise ModelError(
                    "row_state must be strictly ascending within each action"
                )
        if self.row_action.size and (
            self.row_action.min() < 0 or self.row_action.max() >= self.n_actions
        ):
            raise ModelError("row_action out of range")
        if self.row_state.size and (
            self.row_state.min() < 0 or self.row_state.max() >= n_states
        ):
            raise ModelError("row_state out of range")
        object.__setattr__(
            self,
            "_action_ptr",
            np.searchsorted(self.row_action, np.arange(self.n_actions + 1)),
        )

    # -- shape protocol -------------------------------------------------
    @property
    def n_states(self) -> int:
        return int(self.base.shape[0])

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n_actions, self.n_states, self.n_states)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes (CSR data + index arrays)."""
        total = 0
        for csr in (self.base, self.rows):
            total += csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        return total + self.row_action.nbytes + self.row_state.nbytes

    # -- derived structure ---------------------------------------------
    def _override_slice(self, action: int) -> slice:
        return slice(int(self._action_ptr[action]), int(self._action_ptr[action + 1]))

    def override_states(self, action: int) -> np.ndarray:
        """States whose outgoing row ``action`` replaces."""
        return self.row_state[self._override_slice(action)]

    @property
    def delta_rows(self) -> sp.csr_matrix:
        """``rows - base[row_state]`` — the additive form of the overrides."""
        cached = self._cache.get("delta_rows")
        if cached is None:
            cached = _as_csr(self.rows - self.base[self.row_state])
            self._cache["delta_rows"] = cached
        return cached

    @property
    def _aggregator(self) -> sp.csr_matrix:
        """CSR ``(|A|, R)`` summing override rows into their action."""
        cached = self._cache.get("aggregator")
        if cached is None:
            n_rows = len(self.row_action)
            cached = sp.csr_matrix(
                (np.ones(n_rows), (self.row_action, np.arange(n_rows))),
                shape=(self.n_actions, n_rows),
            )
            self._cache["aggregator"] = cached
        return cached

    # -- linear algebra -------------------------------------------------
    def predict_base(self, belief: np.ndarray) -> np.ndarray:
        """``belief @ base`` as a dense vector."""
        return np.asarray(self.base.T @ belief).ravel()

    def predict_base_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """``beliefs @ base`` for a ``(m, |S|)`` stack, row for row.

        One CSR-transpose x dense-block product; scipy evaluates it column
        by column with the matvec kernel, so each output row is
        bit-identical to :meth:`predict_base` on that belief.
        """
        return np.asarray(self.base.T @ beliefs.T).T

    def predict_batch(
        self, beliefs: np.ndarray, action: int, base: np.ndarray | None = None
    ) -> np.ndarray:
        """``beliefs @ T_a`` for a ``(m, |S|)`` stack (batched Eq. 3).

        The incremental fast path of the batched belief update: the shared
        base product may be passed in as ``base`` (and is computed here
        otherwise), and the override correction adds only the delta rows
        the action replaces, scaled by each belief's mass on the origin
        states — unchanged rows are reused across the whole batch.
        """
        predicted = (
            self.predict_base_batch(beliefs) if base is None else base.copy()
        )
        block = self._override_slice(action)
        if block.start != block.stop:
            mass = beliefs[:, self.row_state[block]]
            predicted += np.asarray(self.delta_rows[block].T @ mass.T).T
        return predicted

    def correction_matrix(self, belief: np.ndarray) -> sp.csr_matrix:
        """CSR ``(|A|, |S|)`` with row ``a`` = ``belief @ T_a - belief @ base``.

        Two sparse products over all actions at once: scale each override's
        delta row by the belief mass sitting on its origin state, then sum
        the rows of each action.  The row scaling is applied directly to
        the CSR data (one multiply per non-zero, no COO round trip) — the
        per-row factor expands over ``diff(indptr)``.
        """
        delta = self.delta_rows
        factors = np.repeat(
            np.asarray(belief, dtype=float)[self.row_state],
            np.diff(delta.indptr),
        )
        scaled = sp.csr_matrix(
            (delta.data * factors, delta.indices, delta.indptr),
            shape=delta.shape,
            copy=False,
        )
        scaled.has_canonical_format = True
        scaled.has_sorted_indices = True
        return _as_csr(self._aggregator @ scaled)

    def predict(self, belief: np.ndarray, action: int) -> np.ndarray:
        """``belief @ T_a`` as a dense vector (Eq. 3 numerator)."""
        predicted = self.predict_base(belief)
        block = self._override_slice(action)
        if block.start != block.stop:
            mass = belief[self.row_state[block]]
            predicted += np.asarray(self.delta_rows[block].T @ mass).ravel()
        return predicted

    def matvec(self, action: int, values: np.ndarray) -> np.ndarray:
        """``T_a @ values`` as a dense vector (the Bellman-backup direction)."""
        out = np.asarray(self.base @ values).ravel()
        block = self._override_slice(action)
        if block.start != block.stop:
            out[self.row_state[block]] = np.asarray(
                self.rows[block] @ values
            ).ravel()
        return out

    def row(self, action: int, state: int) -> np.ndarray:
        """Dense outgoing distribution of ``(action, state)``."""
        block = self._override_slice(action)
        local = np.searchsorted(self.row_state[block], state)
        states = self.row_state[block]
        if local < states.size and states[local] == state:
            return np.asarray(self.rows[block.start + local].todense()).ravel()
        return np.asarray(self.base[state].todense()).ravel()

    def action_matrix(self, action: int) -> sp.csr_matrix:
        """``T_a`` materialised as its own CSR matrix."""
        block = self._override_slice(action)
        if block.start == block.stop:
            return self.base
        matrix = self.base.tolil(copy=True)
        states = self.row_state[block]
        matrix[states] = self.rows[block]
        return _as_csr(matrix)

    def action_column(self, action: int, state: int) -> np.ndarray:
        """Dense incoming column ``T_a[:, s]`` (used by the analyzer)."""
        column = np.asarray(self.base[:, state].todense()).ravel().copy()
        block = self._override_slice(action)
        if block.start != block.stop:
            column[self.row_state[block]] = (
                np.asarray(self.rows[block][:, state].todense()).ravel()
            )
        return column

    def self_loop_values(self, state: int) -> np.ndarray:
        """``T_a[s, s]`` for every action ``a`` (absorbing-state checks)."""
        values = np.full(self.n_actions, float(self.base[state, state]))
        hits = np.flatnonzero(self.row_state == state)
        if hits.size:
            values[self.row_action[hits]] = (
                np.asarray(self.rows[hits][:, state].todense()).ravel()
            )
        return values

    def override_row_hashes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(hashes, noop)`` per override row, both vectorised.

        ``hashes[i]`` is the content hash of override row ``i``
        (:func:`csr_row_hashes`); ``noop[i]`` is True when the override
        row equals its base row exactly, i.e. replacing it changes
        nothing.  Together they give each action an effective-content
        signature without densifying anything: the analyzer's
        duplicate-action pass groups actions by their non-noop
        ``(state, hash)`` pairs.
        """
        cached = self._cache.get("override_row_hashes")
        if cached is None:
            delta = self.delta_rows.copy()
            delta.eliminate_zeros()
            noop = np.diff(delta.indptr) == 0
            cached = (csr_row_hashes(self.rows), noop)
            self._cache["override_row_hashes"] = cached
        return cached

    def override_self_loops(self) -> np.ndarray:
        """``rows[i][row_state[i]]`` for every override row, vectorised.

        The self-loop entry each override row assigns to its own state —
        the per-row counterpart of :meth:`self_loop_values`, computed for
        all override rows at once (absorbing-state passes over large
        ``S_phi`` sets).
        """
        if not len(self.row_state):
            return np.zeros(0)
        picked = self.rows[np.arange(len(self.row_state)), self.row_state]
        return np.asarray(picked).ravel()

    def effective_nnz(self) -> int:
        """Total stored entries summed over the |A| effective matrices."""
        base_row_nnz = np.diff(self.base.indptr)
        rows_nnz = np.diff(self.rows.indptr)
        masked = base_row_nnz[self.row_state].sum()
        return int(
            self.n_actions * self.base.nnz - masked + rows_nnz.sum()
        )

    def mean_matrix(self) -> sp.csr_matrix:
        """``mean_a T_a`` in CSR form (the Eq. 5 uniform-random chain)."""
        collapsed = sp.csr_matrix(
            (
                np.ones(len(self.row_state)),
                (self.row_state, np.arange(len(self.row_state))),
            ),
            shape=(self.n_states, len(self.row_state)),
        )
        mean = self.base + (collapsed @ self.delta_rows) / float(self.n_actions)
        return _as_csr(mean)

    def union_support(self) -> sp.csr_matrix:
        """Element-wise max over actions (the analyzer's union graph).

        Conservative: a base row replaced by *every* action still
        contributes its edges (no shipped model overrides a row in all
        actions except the terminate action, whose base rows remain live
        through the passive actions).
        """
        collapsed = sp.csr_matrix(
            (
                np.ones(len(self.row_state)),
                (self.row_state, np.arange(len(self.row_state))),
            ),
            shape=(self.n_states, len(self.row_state)),
        )
        stacked = (collapsed @ self.rows).tocsr()
        return _as_csr(self.base.maximum(stacked))

    # -- pickling -------------------------------------------------------
    def __reduce__(self):
        """Default pickling, or a shared-memory handle during plan export.

        Inside :func:`repro.linalg.shm.exporting` the CSR buffers are moved
        into shared-memory segments and only a lightweight handle is
        pickled, so campaign workers attach the same pages instead of each
        receiving (and unpickling) a full copy of the model.
        """
        from repro.linalg import shm

        handle = shm.export_handle(self)
        if handle is not None:
            return (shm.rebuild, (handle,))
        return (_rebuild_from_state, (type(self), self.__dict__.copy()))

    # -- validation -----------------------------------------------------
    def validate(self, name: str = "transitions") -> None:
        """Check every *effective* row is stochastic.

        Base rows are checked once; overridden rows are checked from their
        override content, so a non-stochastic base row masked by overrides
        in every action still fails (it would surface through
        :meth:`mean_matrix` otherwise).
        """
        _check_rows_stochastic(
            self.base, np.arange(self.n_states), f"{name} (base)"
        )
        if len(self.row_action):
            labels = np.stack([self.row_action, self.row_state], axis=1)
            _check_rows_stochastic(self.rows, labels, f"{name} (overrides)")


@dataclass(frozen=True)
class SparseObservations:
    """Per-action observation matrices as ``base`` + whole-matrix overrides."""

    base: sp.csr_matrix
    overrides: dict[int, sp.csr_matrix]
    n_actions: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", _as_csr(self.base))
        shape = self.base.shape
        fixed = {}
        for action, matrix in self.overrides.items():
            if not 0 <= int(action) < self.n_actions:
                raise ModelError(f"observation override action {action} out of range")
            csr = _as_csr(matrix)
            if csr.shape != shape:
                raise ModelError(
                    f"observation override for action {action} has shape "
                    f"{csr.shape}, expected {shape}"
                )
            fixed[int(action)] = csr
        object.__setattr__(self, "overrides", fixed)

    @property
    def n_states(self) -> int:
        return int(self.base.shape[0])

    @property
    def n_observations(self) -> int:
        return int(self.base.shape[1])

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n_actions, self.n_states, self.n_observations)

    @property
    def nbytes(self) -> int:
        total = 0
        for csr in (self.base, *self.overrides.values()):
            total += csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        return total

    def matrix(self, action: int) -> sp.csr_matrix:
        """The full ``(|S|, |O|)`` CSR matrix of ``action``."""
        return self.overrides.get(action, self.base)

    def row(self, action: int, state: int) -> np.ndarray:
        """Dense observation distribution of ``(action, state)``."""
        return np.asarray(self.matrix(action)[state].todense()).ravel()

    def column(self, action: int, observation: int) -> np.ndarray:
        """Dense likelihood column ``p(o | s', a)`` over states."""
        return (
            np.asarray(self.matrix(action)[:, observation].todense()).ravel()
        )

    def max_per_observation(self) -> np.ndarray:
        """``max_{a, s} p(o | s, a)`` per observation (dead-signal check)."""
        best = np.asarray(self.base.max(axis=0).todense()).ravel()
        for matrix in self.overrides.values():
            best = np.maximum(
                best, np.asarray(matrix.max(axis=0).todense()).ravel()
            )
        return best

    def __reduce__(self):
        """Default pickling, or a shared-memory handle during plan export."""
        from repro.linalg import shm

        handle = shm.export_handle(self)
        if handle is not None:
            return (shm.rebuild, (handle,))
        return (_rebuild_from_state, (type(self), self.__dict__.copy()))

    def validate(self, name: str = "observations") -> None:
        _check_rows_stochastic(
            self.base, np.arange(self.n_states), f"{name} (base)"
        )
        for action, matrix in sorted(self.overrides.items()):
            _check_rows_stochastic(
                matrix, np.arange(self.n_states), f"{name} (action {action})"
            )


@dataclass(frozen=True)
class StructuredRewards:
    """``r[a, s] = time_scale[a] * rate[s] - fixed[a]``, plus replacements.

    The rank-one part captures the paper's reward decomposition — each
    action costs "lost request rate times how long it takes, plus a fixed
    fee" — and the overrides carry the exceptions (repaired-state
    discounts, the terminate action's walk-away penalties).

    Overrides are *replacements*: ``scalar`` returns the stored value
    bit-for-bit, so simulated episode costs (which feed campaign
    fingerprints) cannot pick up floating-point drift from the
    decomposition.  Batched products go through a precomputed additive
    delta matrix instead.
    """

    time_scale: np.ndarray
    rate: np.ndarray
    fixed: np.ndarray
    override: sp.csr_matrix
    _cache: dict = field(init=False, repr=False, compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "time_scale", np.asarray(self.time_scale, dtype=float)
        )
        object.__setattr__(self, "rate", np.asarray(self.rate, dtype=float))
        object.__setattr__(self, "fixed", np.asarray(self.fixed, dtype=float))
        csr = _as_csr(self.override, shape=(self.n_actions, self.n_states))
        object.__setattr__(self, "override", csr)
        if self.time_scale.shape != self.fixed.shape:
            raise ModelError("time_scale and fixed must align")

    @property
    def n_actions(self) -> int:
        return int(self.time_scale.shape[0])

    @property
    def n_states(self) -> int:
        return int(self.rate.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_actions, self.n_states)

    @property
    def nbytes(self) -> int:
        return (
            self.time_scale.nbytes
            + self.rate.nbytes
            + self.fixed.nbytes
            + self.override.data.nbytes
            + self.override.indices.nbytes
            + self.override.indptr.nbytes
        )

    def _base_at(self, actions: np.ndarray, states: np.ndarray) -> np.ndarray:
        return self.time_scale[actions] * self.rate[states] - self.fixed[actions]

    @property
    def _additive(self) -> sp.csr_matrix:
        """Override deltas relative to the rank-one base (for products)."""
        cached = self._cache.get("additive")
        if cached is None:
            coo = self.override.tocoo()
            data = coo.data - self._base_at(coo.row, coo.col)
            cached = sp.csr_matrix(
                (data, (coo.row, coo.col)), shape=self.override.shape
            )
            self._cache["additive"] = cached
        return cached

    @property
    def _override_csc(self) -> sp.csc_matrix:
        cached = self._cache.get("override_csc")
        if cached is None:
            cached = self.override.tocsc()
            self._cache["override_csc"] = cached
        return cached

    def scalar(self, action: int, state: int) -> float:
        """``r[a, s]`` — bit-exact for overridden entries."""
        start, stop = self.override.indptr[action], self.override.indptr[action + 1]
        columns = self.override.indices[start:stop]
        local = np.searchsorted(columns, state)
        if local < columns.size and columns[local] == state:
            return float(self.override.data[start + local])
        return float(
            self.time_scale[action] * self.rate[state] - self.fixed[action]
        )

    def row(self, action: int) -> np.ndarray:
        """Dense reward row ``r[a, :]``."""
        values = self.time_scale[action] * self.rate - self.fixed[action]
        start, stop = self.override.indptr[action], self.override.indptr[action + 1]
        values[self.override.indices[start:stop]] = self.override.data[start:stop]
        return values

    def column(self, state: int) -> np.ndarray:
        """Dense reward column ``r[:, s]``."""
        values = self.time_scale * self.rate[state] - self.fixed
        csc = self._override_csc
        start, stop = csc.indptr[state], csc.indptr[state + 1]
        values[csc.indices[start:stop]] = csc.data[start:stop]
        return values

    def matvec(self, weights: np.ndarray) -> np.ndarray:
        """``r @ weights`` over all actions (expected reward per action)."""
        base = self.time_scale * float(self.rate @ weights) - self.fixed * float(
            weights.sum()
        )
        return base + np.asarray(self._additive @ weights).ravel()

    def mean_over_actions(self) -> np.ndarray:
        """``mean_a r[a, :]`` (the Eq. 5 uniform-random-chain rewards)."""
        base = float(self.time_scale.mean()) * self.rate - float(self.fixed.mean())
        delta = np.asarray(self._additive.sum(axis=0)).ravel() / self.n_actions
        return base + delta

    def max_value(self) -> float:
        """Upper bound on ``max r[a, s]`` (tight on shipped models)."""
        rate_extreme = np.where(
            self.time_scale >= 0.0, self.rate.max(), self.rate.min()
        )
        best = float(np.max(self.time_scale * rate_extreme - self.fixed))
        if self.override.nnz:
            best = max(best, float(self.override.data.max()))
        return best

    def abs_max_column(self, state: int) -> float:
        """``max_a |r[a, s]|`` (the RA finiteness check, Section 3.1)."""
        return float(np.abs(self.column(state)).max())

    def full(self) -> np.ndarray:
        """Densify to an ``(|A|, |S|)`` array (small models only)."""
        values = np.outer(self.time_scale, self.rate) - self.fixed[:, None]
        coo = self.override.tocoo()
        values[coo.row, coo.col] = coo.data
        return values

    def __reduce__(self):
        """Default pickling, or a shared-memory handle during plan export."""
        from repro.linalg import shm

        handle = shm.export_handle(self)
        if handle is not None:
            return (shm.rebuild, (handle,))
        return (_rebuild_from_state, (type(self), self.__dict__.copy()))

    def validate(self, name: str = "rewards") -> None:
        for label, array in (
            ("time_scale", self.time_scale),
            ("rate", self.rate),
            ("fixed", self.fixed),
        ):
            if not np.all(np.isfinite(array)):
                raise ModelError(f"{name}.{label} has non-finite entries")
        if self.override.nnz and not np.all(np.isfinite(self.override.data)):
            raise ModelError(f"{name} overrides have non-finite entries")


__all__ = [
    "SparseObservations",
    "SparseTransitions",
    "StructuredRewards",
    "csr_row_hashes",
]
