"""Command-line entry point for the static model analyzer.

Usage::

    python -m repro.analysis model.npz        # a repro.io archive
    python -m repro.analysis --emn            # a shipped system
    python -m repro.analysis --simple --tiered --emn
    python -m repro.analysis --format json model.npz
    python -m repro.analysis --force big.npz  # override R203 size cutoffs
    python -m repro.analysis --codes          # the diagnostic code table

Archives are loaded *without* model validation, so a structurally broken
model still produces a complete report.  Exit code: 0 when every analyzed
model is clean, 1 when the worst finding is a warning, 2 on errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.diagnostics import CODES, AnalysisReport
from repro.analysis.passes import analyze
from repro.analysis.view import ModelView
from repro.exceptions import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically analyze recovery models (no solving).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="model.npz",
        help="repro.io archives (pomdp or recovery-model) to analyze",
    )
    parser.add_argument(
        "--emn", action="store_true", help="analyze the shipped EMN system"
    )
    parser.add_argument(
        "--simple",
        action="store_true",
        help="analyze the shipped Figure 1(a) example system",
    )
    parser.add_argument(
        "--tiered",
        action="store_true",
        help="analyze the shipped parametric tiered system",
    )
    parser.add_argument(
        "--no-info",
        action="store_true",
        help="hide info-level (R2xx) findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="run analysis passes past their R203 size cutoffs",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    return parser


def _builtin_models(args) -> list[tuple[str, object]]:
    models = []
    if args.emn:
        from repro.systems.emn import build_emn_system

        models.append(("EMN system", build_emn_system().model))
    if args.simple:
        from repro.systems.simple import build_simple_system

        models.append(
            ("simple system", build_simple_system(recovery_notification=False).model)
        )
    if args.tiered:
        from repro.systems.tiered import build_tiered_system

        models.append(("tiered system", build_tiered_system().model))
    return models


def _report_json(report: AnalysisReport) -> dict:
    return {
        "title": report.title,
        "exit_code": report.exit_code,
        "findings": [
            {
                "code": d.code,
                "severity": d.severity.label,
                "message": d.message,
                "location": d.location,
                "states": list(d.states),
                "actions": list(d.actions),
                "fix_hint": d.fix_hint,
            }
            for d in report.sorted().findings
        ],
    }


def _print_codes() -> None:
    print("code  severity  description")
    for code, (severity, description) in sorted(CODES.items()):
        print(f"{code}  {severity.label:<8}  {description}")


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.codes:
        _print_codes()
        return 0

    targets: list[tuple[str, object]] = _builtin_models(args)
    for path in args.paths:
        try:
            targets.append((str(path), ModelView.from_npz(path)))
        except (OSError, ReproError, KeyError, ValueError) as error:
            print(f"error: cannot load {path}: {error}", file=sys.stderr)
            return 2
    if not targets:
        _build_parser().print_usage(sys.stderr)
        print(
            "error: give at least one model archive or --emn/--simple/--tiered",
            file=sys.stderr,
        )
        return 2

    reports = []
    for title, model in targets:
        report = analyze(model, force=args.force)
        reports.append(AnalysisReport(findings=report.findings, title=title))

    if args.json or args.format == "json":
        print(json.dumps([_report_json(r) for r in reports], indent=2))
    else:
        for i, report in enumerate(reports):
            if i:
                print()
            print(report.format(show_info=not args.no_info))
    return max(report.exit_code for report in reports)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    try:
        status = main()
    except BrokenPipeError:
        # Output was piped into something like `head` that closed early;
        # suppress the traceback and flush-at-exit noise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 0
    raise SystemExit(status)
