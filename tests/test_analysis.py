"""Tests for the static model analyzer (:mod:`repro.analysis`).

One test class per diagnostic code on hand-built broken models, the
non-fail-fast aggregation guarantee, the strict-mode adapters, controller
preflight, the builder's report mode, and a hypothesis property pinning
that every model the :class:`RecoveryModel` constructor accepts is free of
``R0xx`` errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    ModelView,
    Severity,
    analyze,
)
from repro.controllers.bounded import BoundedController
from repro.exceptions import AnalysisError, ConditionViolation, ModelError
from repro.pomdp.model import POMDP
from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import RecoveryModel, make_null_absorbing


def healthy_view(**overrides) -> ModelView:
    """A 3-state notified recovery model that passes every check."""
    transitions = np.zeros((2, 3, 3))
    transitions[0] = [[1, 0, 0], [1, 0, 0], [0, 1, 0]]  # repair chain
    transitions[1] = np.eye(3)  # observe
    observations = np.zeros((2, 3, 2))
    observations[:, 0] = [1.0, 0.0]
    observations[:, 1:] = [0.0, 1.0]
    rewards = np.array([[0.0, -2.0, -3.0], [0.0, -0.5, -0.5]])
    fields = dict(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=("null", "fault-a", "fault-b"),
        action_labels=("repair", "observe"),
        observation_labels=("clear", "alarm"),
        null_states=np.array([True, False, False]),
        rate_rewards=np.array([0.0, -1.0, -1.0]),
        recovery_notification=True,
    )
    fields.update(overrides)
    return ModelView(**fields)


class TestDiagnosticType:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic(code="R999", message="nope")

    def test_severity_derived_from_code(self):
        assert Diagnostic(code="R001", message="x").severity is Severity.ERROR
        assert Diagnostic(code="R101", message="x").severity is Severity.WARNING
        assert Diagnostic(code="R201", message="x").severity is Severity.INFO

    def test_every_code_band_matches_severity(self):
        bands = {
            0: Severity.ERROR,  # model errors
            1: Severity.WARNING,  # model warnings
            2: Severity.INFO,  # informational
            3: Severity.ERROR,  # bound-certificate errors
            9: Severity.WARNING,  # determinism lint
        }
        exceptions = {"R900": Severity.ERROR}  # unlintable file
        for code, (severity, _) in CODES.items():
            assert severity is exceptions.get(code, bands[int(code[1])])


class TestReport:
    def test_exit_codes(self):
        clean = AnalysisReport(findings=(Diagnostic(code="R201", message="x"),))
        warn = AnalysisReport(findings=(Diagnostic(code="R104", message="x"),))
        error = AnalysisReport(findings=(Diagnostic(code="R005", message="x"),))
        assert (clean.exit_code, warn.exit_code, error.exit_code) == (0, 1, 2)

    def test_sorted_puts_errors_first(self):
        report = AnalysisReport(
            findings=(
                Diagnostic(code="R201", message="i"),
                Diagnostic(code="R104", message="w"),
                Diagnostic(code="R005", message="e"),
            )
        )
        assert [d.code for d in report.sorted().findings] == ["R005", "R104", "R201"]

    def test_format_mentions_counts_and_hints(self):
        report = analyze(healthy_view(rewards=np.array([[0.0, 1.0, -3.0], [0.0, -0.5, -0.5]])))
        text = report.format()
        assert "error(s)" in text and "hint:" in text

    def test_raise_if_errors_noop_when_clean(self):
        AnalysisReport(findings=()).raise_if_errors()


class TestHealthyModel:
    def test_no_errors_or_warnings(self):
        report = analyze(healthy_view())
        assert not report.has_errors
        assert not report.warnings
        assert {"R201", "R202"} <= set(report.codes)


class TestStochasticity:
    def test_r001_bad_transition_row(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 1] = [0.4, 0.0, 0.0]  # sums to 0.4
        report = analyze(healthy_view(transitions=transitions))
        (finding,) = report.by_code("R001")
        assert "fault-a" in finding.states
        assert "repair" in finding.actions

    def test_r002_bad_observation_row(self):
        view = healthy_view()
        observations = view.observations.copy()
        observations[1, 2] = [0.9, 0.4]  # sums to 1.3
        report = analyze(healthy_view(observations=observations))
        (finding,) = report.by_code("R002")
        assert "fault-b" in finding.states

    def test_tolerances_shared_with_validation(self):
        from repro.util.validation import SUM_ATOL

        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 1, 0] += SUM_ATOL / 2  # within tolerance
        assert not analyze(healthy_view(transitions=transitions)).by_code("R001")
        # validation's isclose() also carries numpy's default rtol, so go
        # well past atol + rtol to be unambiguously out of tolerance.
        transitions[0, 1, 0] += SUM_ATOL * 100
        assert analyze(healthy_view(transitions=transitions)).by_code("R001")


class TestCondition1:
    def test_r003_empty_null_set(self):
        report = analyze(
            healthy_view(null_states=np.array([False, False, False]))
        )
        assert report.by_code("R003")

    def test_r004_unrecoverable_state(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 2] = [0.0, 0.0, 1.0]  # repair self-loops in fault-b
        report = analyze(healthy_view(transitions=transitions))
        (finding,) = report.by_code("R004")
        assert finding.states == ("fault-b",)

    def test_terminate_state_exempt(self):
        # s_T is absorbing by design and must not trip Condition 1.
        transitions = np.zeros((2, 3, 3))
        transitions[0] = [[1, 0, 0], [1, 0, 0], [0, 0, 1]]
        transitions[1, :, 2] = 1.0  # a_T
        observations = np.full((2, 3, 2), 0.5)
        rewards = np.zeros((2, 3))
        rewards[1, 1] = -100.0
        view = ModelView(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            null_states=np.array([True, False, False]),
            rate_rewards=np.array([0.0, -1.0, 0.0]),
            recovery_notification=False,
            terminate_state=2,
            terminate_action=1,
            operator_response_time=100.0,
        )
        assert not analyze(view).by_code("R004")


class TestCondition2:
    def test_r005_positive_reward(self):
        rewards = np.array([[0.0, 0.25, -3.0], [0.0, -0.5, -0.5]])
        report = analyze(healthy_view(rewards=rewards))
        (finding,) = report.by_code("R005")
        assert "fault-a" in finding.states
        assert "0.25" in finding.message


class TestFigure2a:
    def test_r006_non_absorbing_null_state(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 0] = [0.0, 1.0, 0.0]  # repair kicks null back to fault
        report = analyze(healthy_view(transitions=transitions))
        (finding,) = report.by_code("R006")
        assert finding.states == ("null",)
        assert "repair" in finding.actions

    def test_r007_rewarded_null_state(self):
        view = healthy_view()
        rewards = view.rewards.copy()
        rewards[1, 0] = -0.5  # observing in S_phi costs something
        report = analyze(healthy_view(rewards=rewards))
        (finding,) = report.by_code("R007")
        assert finding.states == ("null",)
        assert "observe" in finding.actions

    def test_not_checked_without_notification(self):
        # Figure 2(b) models keep their original null-state dynamics.
        view = healthy_view()
        rewards = view.rewards.copy()
        rewards[1, 0] = -0.5
        report = analyze(
            healthy_view(rewards=rewards, recovery_notification=False)
        )
        assert not report.by_code("R007")


class TestFigure2b:
    @staticmethod
    def terminated_view(**overrides) -> ModelView:
        transitions = np.zeros((3, 4, 4))
        transitions[0] = [[1, 0, 0, 0], [1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        transitions[1] = np.eye(4)
        transitions[2, :, 3] = 1.0  # a_T
        observations = np.full((3, 4, 2), 0.5)
        rewards = np.zeros((3, 4))
        rewards[0] = [0.0, -2.0, -3.0, 0.0]
        rewards[1] = [-0.1, -0.5, -0.5, 0.0]
        rewards[2] = [0.0, -100.0, -200.0, 0.0]
        fields = dict(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
            state_labels=("null", "fault-a", "fault-b", "terminate"),
            action_labels=("repair", "observe", "terminate"),
            null_states=np.array([True, False, False, False]),
            rate_rewards=np.array([0.0, -1.0, -2.0, 0.0]),
            recovery_notification=False,
            terminate_state=3,
            terminate_action=2,
            operator_response_time=100.0,
        )
        fields.update(overrides)
        return ModelView(**fields)

    def test_wired_correctly_is_clean(self):
        assert not analyze(self.terminated_view()).has_errors

    def test_r008_wrong_termination_reward(self):
        view = self.terminated_view()
        rewards = view.rewards.copy()
        rewards[2, 1] = -40.0  # should be rbar * t_op = -100
        report = analyze(self.terminated_view(rewards=rewards))
        findings = report.by_code("R008")
        assert any("rbar * t_op" in f.message for f in findings)

    def test_r008_a_t_not_routing_to_s_t(self):
        view = self.terminated_view()
        transitions = view.transitions.copy()
        transitions[2, 1] = [1.0, 0.0, 0.0, 0.0]
        report = analyze(self.terminated_view(transitions=transitions))
        assert any(
            "probability 1" in f.message for f in report.by_code("R008")
        )

    def test_r008_s_t_not_absorbing(self):
        view = self.terminated_view()
        transitions = view.transitions.copy()
        transitions[0, 3] = [1.0, 0.0, 0.0, 0.0]
        report = analyze(self.terminated_view(transitions=transitions))
        assert any("absorbing" in f.message for f in report.by_code("R008"))

    def test_r008_rewarded_s_t(self):
        view = self.terminated_view()
        rewards = view.rewards.copy()
        rewards[1, 3] = -1.0
        report = analyze(self.terminated_view(rewards=rewards))
        assert any("accrues reward" in f.message for f in report.by_code("R008"))


class TestRAFiniteness:
    def test_r009_rewarded_recurrent_state(self):
        # Unaugmented model: fault-b self-loops under both actions with
        # nonzero cost, so the uniform chain pays forever.
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 2] = [0.0, 0.0, 1.0]
        report = analyze(healthy_view(transitions=transitions))
        (finding,) = report.by_code("R009")
        assert finding.states == ("fault-b",)

    def test_discounted_models_exempt(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 2] = [0.0, 0.0, 1.0]
        report = analyze(healthy_view(transitions=transitions, discount=0.9))
        assert not report.by_code("R009")


class TestWarnings:
    def test_r101_unreachable_state(self):
        # fault-b is not in the initial belief and nothing leads to it.
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0] = [[1, 0, 0], [1, 0, 0], [1, 0, 0]]
        report = analyze(
            healthy_view(
                transitions=transitions,
                initial_belief=np.array([0.0, 1.0, 0.0]),
            )
        )
        (finding,) = report.by_code("R101")
        assert finding.states == ("fault-b",)

    def test_r102_duplicate_actions(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[1] = transitions[0]
        observations = view.observations.copy()
        rewards = view.rewards.copy()
        rewards[1] = rewards[0]
        report = analyze(
            healthy_view(
                transitions=transitions,
                observations=observations,
                rewards=rewards,
            )
        )
        (finding,) = report.by_code("R102")
        assert set(finding.actions) == {"repair", "observe"}

    def test_r103_dominated_action(self):
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[1] = transitions[0]
        rewards = view.rewards.copy()
        rewards[1] = rewards[0] - 1.0  # same dynamics, strictly worse cost
        rewards[1, 0] = 0.0  # keep the null state free (not the point here)
        report = analyze(
            healthy_view(transitions=transitions, rewards=rewards)
        )
        (finding,) = report.by_code("R103")
        assert finding.actions[0] == "observe"  # the dominated one

    def test_r104_dead_observation(self):
        view = healthy_view()
        observations = np.zeros((2, 3, 3))
        observations[:, :, :2] = view.observations  # symbol 3 never emitted
        report = analyze(
            healthy_view(
                observations=observations,
                observation_labels=("clear", "alarm", "dead"),
            )
        )
        (finding,) = report.by_code("R104")
        assert "dead" in finding.message

    def test_r105_slow_absorption(self):
        # fault-b repairs with probability 1e-5 -> ~2e5 expected uniform steps.
        view = healthy_view()
        transitions = view.transitions.copy()
        transitions[0, 2] = [1e-5, 0.0, 1.0 - 1e-5]
        report = analyze(healthy_view(transitions=transitions))
        (finding,) = report.by_code("R105")
        assert "fault-b" in finding.states
        assert not report.has_errors  # loose, but still sound


class TestStrictAdapters:
    def test_condition_violation_still_raised(self, simple_system):
        pomdp = simple_system.model.pomdp
        rewards = pomdp.rewards.copy()
        rewards[0, 0] = 1.0
        broken = POMDP(
            transitions=pomdp.transitions,
            observations=pomdp.observations,
            rewards=rewards,
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
            observation_labels=pomdp.observation_labels,
        )
        from repro.recovery.model import check_condition_2

        with pytest.raises(ConditionViolation) as excinfo:
            check_condition_2(broken)
        assert excinfo.value.condition == 2

    def test_analysis_error_carries_report(self):
        report = analyze(
            healthy_view(
                transitions=np.zeros((2, 3, 3)),  # wildly non-stochastic
            )
        )
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.report is report
        assert excinfo.value.report.has_errors


class TestPreflight:
    def test_clean_model_stores_report(self, simple_system):
        controller = BoundedController(simple_system.model, preflight=True)
        assert controller.preflight_report is not None
        assert controller.preflight_report.exit_code == 0

    def test_default_skips_analysis(self, simple_system):
        controller = BoundedController(simple_system.model)
        assert controller.preflight_report is None

    def test_broken_model_raises(self, simple_system):
        model = simple_system.model
        # Corrupt the augmented arrays post-construction (the one way a
        # controller can see a bad model): re-point a_T away from s_T.
        pomdp = model.pomdp
        transitions = pomdp.transitions.copy()
        transitions[model.terminate_action, 0] = 0.0
        transitions[model.terminate_action, 0, 0] = 1.0
        broken_pomdp = POMDP(
            transitions=transitions,
            observations=pomdp.observations,
            rewards=pomdp.rewards,
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
            observation_labels=pomdp.observation_labels,
            discount=pomdp.discount,
        )
        broken = RecoveryModel(
            pomdp=broken_pomdp,
            null_states=model.null_states,
            rate_rewards=model.rate_rewards,
            durations=model.durations,
            passive_actions=model.passive_actions,
            recovery_notification=False,
            terminate_state=model.terminate_state,
            terminate_action=model.terminate_action,
            operator_response_time=model.operator_response_time,
        )
        with pytest.raises(AnalysisError):
            BoundedController(broken, preflight=True)


class TestBuilderReportMode:
    def test_multiple_errors_in_one_report(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=1.0)
        builder.add_state("stuck", rate_cost=1.0)
        builder.add_action(
            "repair", duration=10.0, transitions={"fault": {"null": 0.7}}
        )
        builder.set_observation_matrix(
            ("alarm", "clear"),
            np.array([[0.0, 1.0], [0.5, 0.5], [0.5, 0.5]]),
        )
        report = builder.analyze(operator_response_time=100.0)
        assert {"R001", "R004"} <= set(report.codes)
        assert report.exit_code == 2

    def test_clean_builder_matches_build(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=1.0)
        builder.add_action(
            "repair", duration=10.0, transitions={"fault": {"null": 1.0}}
        )
        builder.set_observation_matrix(
            ("alarm", "clear"), np.array([[0.0, 1.0], [0.5, 0.5]])
        )
        report = builder.analyze(operator_response_time=100.0)
        assert not report.has_errors
        model = builder.build(operator_response_time=100.0)
        assert not model.analyze().has_errors

    def test_misuse_still_raises(self):
        builder = RecoveryModelBuilder()
        with pytest.raises(ModelError):
            builder.analyze()


class TestModelViewConstructors:
    def test_from_model_roundtrip(self, simple_system):
        view = ModelView.from_model(simple_system.model)
        assert view.terminate_state == simple_system.model.terminate_state
        assert view.initial_belief is not None

    def test_from_mdp(self, simple_system):
        mdp = simple_system.model.pomdp.to_mdp()
        view = ModelView.from_model(mdp)
        assert view.observations is None
        report = analyze(view)
        assert not report.has_errors

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            ModelView(transitions=np.zeros((2, 3, 4)), rewards=np.zeros((2, 3)))


class TestNullAbsorbingConsistency:
    def test_array_core_matches_pomdp_wrapper(self, simple_system):
        # make_null_absorbing and its array-level core must agree.
        raw = simple_system.model.pomdp
        mask = np.zeros(raw.n_states, dtype=bool)
        mask[0] = True
        from repro.recovery.model import null_absorbing_arrays

        transitions, rewards = null_absorbing_arrays(
            raw.transitions, raw.rewards, mask
        )
        wrapped = make_null_absorbing(raw, mask)
        assert np.allclose(wrapped.transitions, transitions)
        assert np.allclose(wrapped.rewards, rewards)


@st.composite
def random_recovery_models(draw):
    """Random models built the way RecoveryModel's constructor expects."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_faults = draw(st.integers(min_value=1, max_value=4))
    n_actions = draw(st.integers(min_value=1, max_value=3))
    n_observations = draw(st.integers(min_value=1, max_value=3))
    notification = draw(st.booleans())
    rng = np.random.default_rng(seed)
    n_states = n_faults + 1
    transitions = rng.dirichlet(np.ones(n_states), size=(n_actions, n_states))
    # Give every fault state a direct route into the null state so
    # Condition 1 holds by construction.
    transitions[:, :, 0] = np.maximum(transitions[:, :, 0], 0.05)
    transitions /= transitions.sum(axis=2, keepdims=True)
    observations = rng.dirichlet(
        np.ones(n_observations), size=(n_actions, n_states)
    )
    rewards = -rng.uniform(0.1, 2.0, size=(n_actions, n_states))
    null_states = np.zeros(n_states, dtype=bool)
    null_states[0] = True
    rate_rewards = np.append(0.0, -rng.uniform(0.1, 1.0, size=n_faults))
    return (
        transitions,
        observations,
        rewards,
        null_states,
        rate_rewards,
        notification,
        rng.uniform(10.0, 1000.0),
    )


class TestAcceptedModelsAreErrorFree:
    """Property: constructor-accepted models yield zero R0xx errors."""

    @settings(max_examples=40, deadline=None)
    @given(random_recovery_models())
    def test_no_r0xx_on_accepted_models(self, drawn):
        from repro.recovery.model import with_termination_action

        (
            transitions,
            observations,
            rewards,
            null_states,
            rate_rewards,
            notification,
            t_op,
        ) = drawn
        pomdp = POMDP(
            transitions=transitions,
            observations=observations,
            rewards=rewards,
        )
        if notification:
            augmented = make_null_absorbing(pomdp, null_states)
            model = RecoveryModel(
                pomdp=augmented,
                null_states=null_states,
                rate_rewards=rate_rewards,
                durations=np.ones(pomdp.n_actions),
                passive_actions=np.zeros(pomdp.n_actions, dtype=bool),
                recovery_notification=True,
            )
        else:
            augmented, s_t, a_t = with_termination_action(
                pomdp, null_states, rate_rewards, t_op
            )
            model = RecoveryModel(
                pomdp=augmented,
                null_states=np.append(null_states, False),
                rate_rewards=np.append(rate_rewards, 0.0),
                durations=np.append(np.ones(pomdp.n_actions), 0.0),
                passive_actions=np.zeros(augmented.n_actions, dtype=bool),
                recovery_notification=False,
                terminate_state=s_t,
                terminate_action=a_t,
                operator_response_time=t_op,
            )
        report = analyze(model)
        errors = [d for d in report.findings if d.severity is Severity.ERROR]
        assert not errors, report.format()


class TestExceptionTypes:
    def test_condition_violation_rejects_unknown_condition(self):
        with pytest.raises(ValueError, match="condition must be one of"):
            ConditionViolation(3, "nope")

    def test_condition_violation_repr(self):
        exc = ConditionViolation(2, "positive reward")
        assert repr(exc) == (
            "ConditionViolation(condition=2, "
            "message='Condition 2 violated: positive reward')"
        )
        assert exc.condition == 2

    def test_analysis_error_carries_report(self):
        report = AnalysisReport(findings=())
        exc = AnalysisError("broken", report=report)
        assert exc.report is report
        assert isinstance(exc, ModelError)

    def test_analysis_error_report_optional(self):
        assert AnalysisError("broken").report is None
