"""Benchmarks for RA-Bound scalability (Section 4.3's state-space claim).

One benchmark per model size on the tiered family: the measured quantity
*is* the claim — a sparse linear solve over the original state space stays
fast as the state count grows to the hundreds of thousands.
"""

import numpy as np
import pytest

from repro.experiments.scalability import verify_against_dense
from repro.systems.tiered import solve_tiered_ra_bound


@pytest.mark.parametrize("replicas_per_tier", [10, 1_000, 50_000])
def test_ra_bound_scaling(benchmark, replicas_per_tier):
    """RA-Bound sparse solve on a 3-tier system of growing size."""
    replicas = (replicas_per_tier,) * 3

    values = benchmark.pedantic(
        solve_tiered_ra_bound, args=(replicas,), rounds=1, iterations=1
    )
    assert np.all(np.isfinite(values))
    assert np.all(values <= 0)
    benchmark.extra_info["n_states"] = int(values.shape[0])


def test_sparse_construction_correctness(benchmark):
    """The sparse chain must agree with the dense model (fast guard)."""
    discrepancy = benchmark.pedantic(
        verify_against_dense, args=((2, 2, 2),), rounds=1, iterations=1
    )
    assert discrepancy < 1e-8
