"""Tests for BoundVectorSet (Eq. 6 and Section 4.3 storage management)."""

import numpy as np
import pytest

from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError


def make_set(**kwargs):
    return BoundVectorSet(np.array([-2.0, -3.0]), **kwargs)


class TestConstruction:
    def test_single_vector_seed(self):
        bound_set = make_set()
        assert len(bound_set) == 1
        assert bound_set.n_states == 2

    def test_stack_seed(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        assert len(bound_set) == 2

    def test_max_vectors_below_seed_rejected(self):
        with pytest.raises(ModelError):
            BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]), max_vectors=1)


class TestEvaluation:
    def test_value_is_max_hyperplane(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        assert bound_set.value(np.array([1.0, 0.0])) == 0.0
        assert bound_set.value(np.array([0.5, 0.5])) == -0.5

    def test_value_batch_matches_scalar(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        beliefs = np.array([[0.2, 0.8], [0.9, 0.1]])
        batch = bound_set.value_batch(beliefs)
        assert np.allclose(batch, [bound_set.value(b) for b in beliefs])

    def test_improvement_at(self):
        bound_set = make_set()
        better = np.array([-1.0, -3.0])
        assert np.isclose(
            bound_set.improvement_at(better, np.array([1.0, 0.0])), 1.0
        )

    def test_value_batch_accepts_a_single_one_dimensional_belief(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        batch = bound_set.value_batch(np.array([0.5, 0.5]))
        assert batch.shape == (1,)
        assert batch[0] == bound_set.value(np.array([0.5, 0.5]))

    def test_value_batch_empty_belief_stack(self):
        bound_set = make_set()
        result = bound_set.value_batch(np.zeros((0, 2)))
        assert result.shape == (0,)
        assert np.array_equal(bound_set._usage, np.zeros(1, dtype=np.int64))

    def test_value_batch_rejects_mismatched_belief_width(self):
        bound_set = make_set()
        with pytest.raises(ModelError):
            bound_set.value_batch(np.zeros((2, 3)))

    def test_value_batch_returns_exact_maxima(self):
        """Returned values are the exact per-column max — bit-identical to
        value() — with the tie-break applied only to usage accounting."""
        vectors = np.array([[-1.0, -2.0, 0.0], [0.0, -1.0, -2.0]])
        bound_set = BoundVectorSet(vectors)
        rng = np.random.default_rng(0)
        beliefs = rng.dirichlet(np.ones(3), size=8)
        batch = bound_set.value_batch(beliefs)
        np.testing.assert_array_equal(batch, (vectors @ beliefs.T).max(axis=0))

    def test_value_batch_credits_usage_to_winning_vectors(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        bound_set.value_batch(np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9]]))
        # Vector 1 wins the two fault-heavy columns, vector 0 the last.
        assert bound_set._usage.tolist() == [1, 2]

    def test_value_batch_tied_columns_credit_the_lowest_index(self):
        bound_set = BoundVectorSet(np.array([[-1.0, -1.0], [-1.0, -1.0]]))
        bound_set.value_batch(np.array([[0.5, 0.5]]))
        assert bound_set._usage.tolist() == [1, 0]

    def test_record_wins_accumulates(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        bound_set.record_wins(np.array([0, 1, 1]))
        bound_set.record_wins(np.array([], dtype=np.int64))
        assert bound_set._usage.tolist() == [1, 2]


class TestAdd:
    def test_useful_vector_added(self):
        bound_set = make_set()
        assert bound_set.add(np.array([-1.0, -4.0]))
        assert len(bound_set) == 2

    def test_dominated_vector_rejected(self):
        bound_set = make_set()
        assert not bound_set.add(np.array([-3.0, -4.0]))
        assert bound_set.rejections == 1

    def test_belief_gate_rejects_non_improving(self):
        bound_set = make_set()
        # Improves at pi=(0,1) but not at the supplied belief (1,0).
        vector = np.array([-2.5, -2.0])
        assert not bound_set.add(vector, belief=np.array([1.0, 0.0]))

    def test_min_improvement_threshold(self):
        bound_set = make_set()
        vector = np.array([-1.9, -3.0])  # improves by 0.1 at (1,0)
        assert not bound_set.add(
            vector, belief=np.array([1.0, 0.0]), min_improvement=0.5
        )
        assert bound_set.add(
            vector, belief=np.array([1.0, 0.0]), min_improvement=0.05
        )

    def test_wrong_shape_rejected(self):
        with pytest.raises(ModelError):
            make_set().add(np.array([-1.0, -1.0, -1.0]))


class TestEviction:
    def test_least_used_evicted(self):
        bound_set = make_set(max_vectors=2)
        bound_set.add(np.array([-1.0, -4.0]))  # index 1
        # Use index 1 a few times so a later arrival evicts... nothing else
        # is evictable except index 1 itself (index 0 is pinned).
        for _ in range(3):
            bound_set.value(np.array([1.0, 0.0]))
        bound_set.add(np.array([-3.0, -1.0]))  # forces eviction of index 1
        assert len(bound_set) == 2
        assert bound_set.evictions == 1
        # The seed must survive.
        assert np.allclose(bound_set.vectors[0], [-2.0, -3.0])

    def test_seed_never_evicted(self):
        bound_set = make_set(max_vectors=2)
        bound_set.add(np.array([-1.0, -4.0]))
        bound_set.add(np.array([-4.0, -1.0]))
        bound_set.add(np.array([-0.5, -5.0]))
        assert any(
            np.allclose(vector, [-2.0, -3.0]) for vector in bound_set.vectors
        )


class TestPrune:
    def test_pointwise_prune(self):
        bound_set = BoundVectorSet(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        bound_set.add(np.array([-1.5, -0.5]))
        dropped = bound_set.prune("pointwise")
        assert dropped >= 0
        assert len(bound_set) >= 2

    def test_lp_prune_removes_interior(self):
        bound_set = BoundVectorSet(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        # Interior vector below max of the two: useless everywhere.
        bound_set._vectors = np.vstack([bound_set._vectors, [-0.6, -0.6]])
        bound_set._usage = np.append(bound_set._usage, 0)
        dropped = bound_set.prune("lp")
        assert dropped == 1

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_set().prune("bogus")

    def test_vectors_view_is_readonly(self):
        bound_set = make_set()
        with pytest.raises(ValueError):
            bound_set.vectors[0, 0] = 7.0
