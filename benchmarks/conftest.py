"""Shared fixtures for the benchmark harness.

Benchmarks default to reduced injection counts so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_INJECTIONS`` to
scale any campaign-style benchmark up toward the paper's 10,000 (see
EXPERIMENTS.md for full-scale results and the scripts that produced them).
"""

from __future__ import annotations

import os

import pytest

from repro.controllers.bootstrap import bootstrap_bounds
from repro.systems.emn import build_emn_system


def bench_injections(default: int) -> int:
    """Injection count for campaign benchmarks (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_INJECTIONS", default))


@pytest.fixture(scope="session")
def emn_system():
    """The EMN system with the paper's parameters."""
    return build_emn_system()


@pytest.fixture(scope="session")
def bootstrapped_bounds(emn_system):
    """The paper's bootstrap configuration: 10 runs at depth 2."""
    bound_set, _ = bootstrap_bounds(
        emn_system.model, iterations=10, depth=2, variant="average", seed=0
    )
    return bound_set
