"""The engine/session split behind every recovery strategy.

Section 4 describes an *online* decision loop: a controller that lives
inside the recovering system, holds a belief per incident, and answers
"what next?" on demand.  Two kinds of state back that loop, with very
different lifetimes:

* **shared, immutable-after-warmup state** — the augmented model, the
  RA-Bound-seeded :class:`~repro.bounds.vector_set.BoundVectorSet`, QMDP
  Q-values, fixing-action tables, preflight reports.  Expensive to build,
  identical for every concurrent recovery, safe to share.  This lives in a
  :class:`PolicyEngine`.
* **per-episode mutable state** — the belief, the step count, the done
  flag, the decision stopwatch, the ground-truth hook, per-episode
  refinement overrides.  Cheap, short-lived, one per recovery incident.
  This lives in a :class:`RecoverySession` spawned from an engine.

One engine multiplexes any number of sessions: the batch campaign drivers
(:mod:`repro.sim`) open one session per isolation chunk and reset it per
episode, while the persistent policy service (:mod:`repro.serve`) keeps
many sessions open concurrently against a single warm engine.  The
classic :class:`~repro.controllers.base.RecoveryController` API survives
as a thin adapter over one engine plus one live session.

The one deliberately *shared mutable* object is the bound set: Section
4.1's refinements accumulate across episodes ("bounds improve along
beliefs naturally generated during recovery"), so sessions refine their
engine's set in place — exactly the state the campaign engine clones per
chunk and merges back, and the policy service checkpoints to disk.
"""

from __future__ import annotations

import abc
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BeliefError, ControllerError
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.belief import update_belief
from repro.recovery.model import RecoveryModel
from repro.util.timing import Stopwatch

#: Sentinel action index for terminating decisions that execute nothing.
#: Only engines on models *without* a terminate action (recovery
#: notification, Figure 2(a)) may emit it: their termination is a pure
#: bookkeeping step.  Where the model has ``a_T``, terminating decisions
#: carry it (see :meth:`PolicyEngine.terminate_decision`) so the
#: environment charges the termination reward.  The campaign, trace, and
#: metrics layers treat ``NO_ACTION`` as "execute nothing": it is never run
#: against the environment, counted as a recovery action, or rendered as an
#: action label.
NO_ACTION = -1


@dataclass(frozen=True)
class Decision:
    """One policy decision.

    Attributes:
        action: index of the chosen action in the model's action space, or
            :data:`NO_ACTION` when ``is_terminate`` is True and there is
            nothing to execute (models with recovery notification have no
            ``a_T``).
        is_terminate: the policy declares recovery finished.  For the
            bounded policy this coincides with choosing ``a_T``; for
            the baselines it is the probability-threshold test.
        value: the root value of the lookahead tree, when one was built.
    """

    action: int
    is_terminate: bool = False
    value: float | None = None

    @property
    def executes_action(self) -> bool:
        """True when ``action`` is a real model action to run."""
        return self.action >= 0


class RecoverySession:
    """Per-episode mutable state: belief tracking and the decision loop.

    A session mirrors Section 4's controller life cycle — :meth:`reset` at
    fault-detection time, then alternating :meth:`observe` (Bayesian belief
    update with the latest monitor outputs, Eq. 4) and :meth:`decide`
    (delegated to the engine) until a decision with ``is_terminate`` set
    ends the episode.  It owns nothing expensive: everything warm lives on
    the engine, so opening a session is allocation-free in model terms and
    a service can hold thousands of them.

    Args:
        engine: the shared :class:`PolicyEngine` that makes decisions.
        refine: per-session override of the engine's online-refinement
            default — ``True``/``False`` force it, ``None`` inherits.  The
            policy service uses ``False`` for replay/audit sessions that
            must not mutate the shared bound set.
        session_id: optional label carried into telemetry span attributes
            so concurrent sessions' flamegraphs stay separable.
    """

    def __init__(
        self,
        engine: PolicyEngine,
        refine: bool | None = None,
        session_id: str | None = None,
    ):
        self.engine = engine
        self.refine = refine
        self.session_id = session_id
        self.stopwatch = Stopwatch()
        self.steps = 0
        self.true_state: int | None = None
        self._belief: np.ndarray | None = None
        self._done = True

    # -- engine pass-throughs -------------------------------------------------

    @property
    def model(self) -> RecoveryModel:
        """The engine's (shared) recovery model."""
        return self.engine.model

    @property
    def uses_monitors(self) -> bool:
        """Whether the campaign should feed monitor outputs to this session."""
        return self.engine.uses_monitors

    # -- episode life cycle ---------------------------------------------------

    def reset(self, initial_belief: np.ndarray | None = None) -> None:
        """Start a new recovery episode.

        The default initial belief is the paper's "all faults equally
        likely" distribution; the campaign then immediately feeds the first
        monitor outputs through :meth:`observe`.
        """
        model = self.engine.model
        if initial_belief is None:
            self._belief = model.initial_belief()
        else:
            belief = np.asarray(initial_belief, dtype=float)
            if belief.shape != (model.pomdp.n_states,):
                raise ControllerError(
                    f"initial belief must have length {model.pomdp.n_states}"
                )
            self._belief = belief.copy()
        self._done = False
        self.steps = 0
        self.true_state = None
        self.engine.on_reset(self)

    @property
    def belief(self) -> np.ndarray:
        """The session's current belief state (copy)."""
        if self._belief is None:
            raise ControllerError("session has not been reset onto an episode")
        return self._belief.copy()

    @property
    def done(self) -> bool:
        """True once the session has terminated the current episode."""
        return self._done

    def span_attributes(self) -> dict[str, str]:
        """Telemetry span attributes identifying this session, if labelled.

        Unlabelled sessions (the campaign's) contribute nothing, so batch
        traces are byte-identical to the pre-session era; the policy
        service labels every session so concurrent flamegraphs separate
        (see :func:`repro.obs.trace.span_tree` grouping).
        """
        if self.session_id is None:
            return {}
        return {"session": self.session_id}

    def belief_view(self) -> np.ndarray:
        """The live belief array, *not* a copy.

        For engine internals on the decision hot path (one belief copy per
        decision is measurable at 300k states).  Engines must treat it as
        read-only; external callers want :attr:`belief`.
        """
        if self._belief is None:
            raise ControllerError("session has not been reset onto an episode")
        return self._belief

    def observe(self, action: int, observation: int) -> None:
        """Fold the monitor outputs after ``action`` into the belief (Eq. 4).

        If the observation is impossible under the current belief (a
        model/environment mismatch), the belief is re-seeded from the
        initial fault distribution and the update retried, so the
        session re-diagnoses instead of crashing mid-recovery.
        """
        if self._belief is None:
            raise ControllerError("observe() before reset()")
        if observation < 0:
            # The environment's terminate branch hands back the NO_OBSERVATION
            # sentinel; feeding it to Eq. 4 would silently index the last
            # observation column (numpy wraps negative indices) and corrupt
            # the belief.  No shipped loop does this — fail loudly if a
            # custom driver tries.
            raise ControllerError(
                f"observe() got negative observation {observation}; terminate "
                "executions produce no monitor outputs and must not be fed "
                "back into the belief update"
            )
        model = self.engine.model
        pomdp = model.pomdp
        telemetry = telemetry_active()
        span = (
            telemetry.span("belief.update")
            if telemetry is not None
            else nullcontext()
        )
        with span:
            try:
                self._belief = update_belief(
                    pomdp, self._belief, action, observation
                )
            except BeliefError:
                fallback = model.initial_belief()
                try:
                    self._belief = update_belief(
                        pomdp, fallback, action, observation
                    )
                    fallback_recovered = True
                except BeliefError:
                    self._belief = fallback
                    fallback_recovered = False
                if telemetry is not None:
                    telemetry.count("belief.update_failures")
                    telemetry.event(
                        "belief_update_failure",
                        action=int(action),
                        observation=int(observation),
                        fallback_recovered=fallback_recovered,
                    )

    def decide(self) -> Decision:
        """Ask the engine for the next action; timed for "algorithm time".

        The stopwatch lap also feeds the ``session.decide`` latency
        histogram — the per-decision distribution the policy service's
        SLO gate reads — reusing the stopwatch's own clock reads.
        """
        if self._belief is None:
            raise ControllerError("decide() before reset()")
        if self._done:
            raise ControllerError("decide() after the episode terminated")
        lap_start = self.stopwatch.total_seconds
        with self.stopwatch:
            decision = self.engine.decide(self)
        telemetry = telemetry_active()
        if telemetry is not None:
            telemetry.observe_latency(
                "session.decide", self.stopwatch.total_seconds - lap_start
            )
        if decision.is_terminate:
            self._done = True
        else:
            self.steps += 1
        return decision

    def sync_true_state(self, state: int) -> None:
        """Record the ground truth the campaign exposes after transitions.

        Every honest engine ignores it; only the oracle engine reads it
        back (it models omniscient diagnosis, not something a real
        controller could do).
        """
        self.engine.on_true_state(self, state)


class PolicyEngine(abc.ABC):
    """Shared, immutable-after-warmup decision state for one policy.

    Subclasses hold whatever is expensive and episode-independent (bound
    sets, Q-value tables, fixing-action maps) and implement
    :meth:`decide`, which reads a session's belief and answers with a
    :class:`Decision`.  Engines never track episode state themselves —
    that is the session's job — so one engine can serve any number of
    sequential or concurrent sessions.

    Args:
        model: the (augmented) recovery model to control.
        preflight: run the static analyzer over ``model`` before the
            first session can be opened.  Error findings raise
            :class:`~repro.exceptions.AnalysisError` (carrying the full
            report); otherwise the report is kept on
            :attr:`preflight_report` so operators can surface warnings
            (loose bounds, dead observations) at deployment time.
    """

    #: Display name used in experiment tables (subclasses override).
    name: str = "policy"

    #: Engines that opt out of monitor feedback (the oracle) set this False.
    uses_monitors: bool = True

    def __init__(self, model: RecoveryModel, preflight: bool = False):
        self.model = model
        self.preflight_report = None
        if preflight:
            from repro.analysis.passes import analyze

            report = analyze(model)
            report.raise_if_errors()
            self.preflight_report = report

    # -- session factory ------------------------------------------------------

    def session(
        self,
        refine: bool | None = None,
        session_id: str | None = None,
    ) -> RecoverySession:
        """Open a new :class:`RecoverySession` against this engine."""
        return RecoverySession(self, refine=refine, session_id=session_id)

    # -- shared-state protocol ------------------------------------------------

    def refinement_state(self):
        """The mutable bound-vector set this engine refines, if any.

        The campaign engine merges the refinements its engine clones
        produce back into this object (see :mod:`repro.sim.parallel`), and
        the policy service checkpoints it.  Engines with a differently
        named set override this; returning ``None`` opts out.
        """
        return getattr(self, "bound_set", None)

    # -- session hooks --------------------------------------------------------

    def on_reset(self, session: RecoverySession) -> None:
        """Per-episode engine hook (optional)."""

    def on_true_state(self, session: RecoverySession, state: int) -> None:
        """Store the campaign's ground-truth signal on the session."""
        session.true_state = int(state)

    # -- decisions ------------------------------------------------------------

    @abc.abstractmethod
    def decide(self, session: RecoverySession) -> Decision:
        """Choose an action for ``session``'s current belief."""

    def terminate_decision(self, value: float | None = None) -> Decision:
        """A terminating decision that executes ``a_T`` where the model has one.

        Threshold and notification exits used to return a bare ``action=-1``
        sentinel; on models with a terminate action that skipped the
        termination-reward charge entirely (the operator-response cost of
        walking away from a live fault, Section 3.1).  The decision
        carries ``a_T`` whenever it exists — the campaign executes it, and
        the environment charges ``r(s, a_T)`` (zero once recovered) — and
        falls back to :data:`NO_ACTION` only for recovery-notification
        models, whose termination is pure bookkeeping.
        """
        action = self.model.terminate_action
        return Decision(
            action=NO_ACTION if action is None else action,
            is_terminate=True,
            value=value,
        )
