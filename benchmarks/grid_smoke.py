"""Grid-resume smoke: SIGINT a sweep mid-cell, resume, verify no drift.

The CI guard for the resumable-checkpoint contract of
:mod:`repro.experiments.grid`:

1. run a reference sweep to completion in one process;
2. start the *same* sweep against a fresh store in a subprocess, watch its
   ``cells.jsonl`` and deliver ``SIGINT`` as soon as the first record
   lands (so at least one cell is checkpointed and at least one is not);
3. re-invoke the sweep on the interrupted store and let it finish;
4. fail if the resumed store's per-cell fingerprints (or the grid
   fingerprint over them) differ from the uninterrupted reference, if the
   resume re-ran a checkpointed cell, or if any ``*.tmp`` file survived
   anywhere in the store tree.

Usage::

    python -m benchmarks.grid_smoke [--injections N] [--keep DIR]

Exit codes: 0 — contract holds; 1 — drift, re-run, or leftover temp
files; 2 — harness failure (subprocess died for another reason).
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.store import ResultsStore
from repro.io import TEMP_SUFFIX

#: The smoke sweep: two campaign cells and two bootstrap cells — small
#: enough for CI, with the heuristic cell slow enough (depth-1 lookahead,
#: every episode) that SIGINT lands mid-sweep reliably.
def smoke_spec(injections: int) -> GridSpec:
    return GridSpec(
        experiments=("table1", "fig5"),
        controllers=("most likely", "heuristic (depth 1)"),
        seeds=(2006,),
        backends=("dense",),
        injections=injections,
        iterations=4,
    )


def _grid_argv(store: Path, injections: int) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.experiments",
        "grid",
        str(store),
        "--experiments",
        "table1",
        "fig5",
        "--controllers",
        "most likely",
        "heuristic (depth 1)",
        "--seeds",
        "2006",
        "--injections",
        str(injections),
        "--iterations",
        "4",
    ]


def _interrupt_after_first_record(store: Path, injections: int) -> int:
    """Run the sweep in a subprocess; SIGINT it once one cell is stored.

    Returns the number of records checkpointed before the interrupt.
    """
    process = subprocess.Popen(
        _grid_argv(store, injections),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    records = ResultsStore(store)
    deadline = time.monotonic() + 300.0  # codelint: ignore[R903] -- harness timeout, not simulated time
    try:
        while time.monotonic() < deadline:  # codelint: ignore[R903] -- harness timeout
            if process.poll() is not None:
                # Finished before we could interrupt: the sweep is too
                # fast for this machine; treat as harness failure so CI
                # flags it rather than silently passing.
                print(
                    "grid_smoke: sweep finished before SIGINT "
                    f"(rc={process.returncode}); raise --injections"
                )
                raise SystemExit(2)
            if len(records.records()) >= 1:
                process.send_signal(signal.SIGINT)
                break
            time.sleep(0.05)
        else:
            raise SystemExit(2)
        process.wait(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    return len(records.records())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--injections",
        type=int,
        default=int(os.environ.get("REPRO_GRID_SMOKE_INJECTIONS", "300")),
        help="campaign injections per table1 cell (default 300, which "
        "keeps the second cell busy for ~1s; raise if the sweep outruns "
        "the SIGINT)",
    )
    parser.add_argument(
        "--keep",
        type=Path,
        default=None,
        metavar="DIR",
        help="run inside DIR and keep it (default: fresh temp dir)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        workdir = args.keep or Path(scratch)
        workdir.mkdir(parents=True, exist_ok=True)

        spec = smoke_spec(args.injections)
        reference = run_grid(spec, workdir / "reference")
        print(
            f"reference sweep: {reference.ran} cells, "
            f"grid fingerprint {reference.fingerprint[:16]}..."
        )

        resumed_store = workdir / "resumed"
        checkpointed = _interrupt_after_first_record(
            resumed_store, args.injections
        )
        print(f"interrupted with {checkpointed} cell(s) checkpointed")
        if checkpointed >= reference.total:
            failures.append(
                "SIGINT landed after every cell completed; nothing resumed"
            )

        resumed = run_grid(spec, resumed_store)
        print(
            f"resume: {resumed.ran} run, {resumed.skipped} skipped, "
            f"grid fingerprint {resumed.fingerprint[:16]}..."
        )

        if resumed.skipped != checkpointed:
            failures.append(
                f"resume skipped {resumed.skipped} cells but "
                f"{checkpointed} were checkpointed"
            )
        if resumed.fingerprint != reference.fingerprint:
            failures.append(
                "grid fingerprint drift: "
                f"{resumed.fingerprint} != {reference.fingerprint}"
            )
        for fresh, clean in zip(resumed.records, reference.records):
            if fresh["fingerprint"] != clean["fingerprint"]:
                failures.append(
                    f"cell {fresh['cell_id']} fingerprint drift after resume"
                )
        leftovers = sorted(
            str(p) for p in workdir.rglob(f"*{TEMP_SUFFIX}")
        )
        if leftovers:
            failures.append(f"leftover temp files: {leftovers}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("grid-resume contract holds: checkpointed cells skipped, "
          "fingerprints bit-identical, no temp files left")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
