"""A validation-free view of a model for the static analyzer.

The model classes (:class:`repro.mdp.MDP`, :class:`repro.pomdp.POMDP`,
:class:`repro.recovery.RecoveryModel`) validate eagerly and raise on the
*first* problem.  The analyzer's job is the opposite: accept anything
array-shaped and report *every* problem.  :class:`ModelView` is the common
denominator — raw arrays plus labels plus whatever recovery metadata is
known — buildable from a validated model object, from raw arrays, or from
an ``.npz`` archive written by :mod:`repro.io` (loaded without validation,
so a report can be produced even for archives the loaders would reject).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.linalg.ops import mean_transition_matrix, union_transition_matrix


def _labels(prefix: str, count: int, given=None) -> tuple[str, ...]:
    if given is not None and len(given) == count:
        return tuple(str(label) for label in given)
    return tuple(f"{prefix}{i}" for i in range(count))


@dataclass(frozen=True)
class ModelView:
    """Raw model arrays plus optional recovery metadata.

    Attributes:
        transitions: ``(|A|, |S|, |S|)`` array.
        rewards: ``(|A|, |S|)`` array.
        observations: ``(|A|, |S|, |O|)`` array, or None for plain MDPs.
        state_labels / action_labels / observation_labels: display names.
        discount: ``beta``.
        null_states: ``S_phi`` mask, or None when not a recovery model.
        rate_rewards: per-state ``rbar(s)``, or None.
        recovery_notification: Figure 2(a) vs 2(b), or None when unknown.
        terminate_state / terminate_action: ``s_T`` / ``a_T`` indices.
        operator_response_time: ``t_op`` for the termination rewards.
        initial_belief: the belief recovery starts from, or None.
    """

    transitions: np.ndarray | SparseTransitions
    rewards: np.ndarray | StructuredRewards
    observations: np.ndarray | SparseObservations | None = None
    state_labels: tuple[str, ...] = ()
    action_labels: tuple[str, ...] = ()
    observation_labels: tuple[str, ...] = ()
    discount: float = 1.0
    null_states: np.ndarray | None = None
    rate_rewards: np.ndarray | None = None
    recovery_notification: bool | None = None
    terminate_state: int | None = None
    terminate_action: int | None = None
    operator_response_time: float | None = None
    initial_belief: np.ndarray | None = None
    _cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self):
        if isinstance(self.transitions, SparseTransitions):
            self._init_sparse()
            return
        transitions = np.asarray(self.transitions, dtype=float)
        if transitions.ndim != 3 or transitions.shape[1] != transitions.shape[2]:
            raise ModelError(
                f"transitions must have shape (|A|, |S|, |S|), got "
                f"{transitions.shape}"
            )
        rewards = np.asarray(self.rewards, dtype=float)
        n_actions, n_states = transitions.shape[0], transitions.shape[1]
        if rewards.shape != (n_actions, n_states):
            raise ModelError(
                f"rewards must have shape ({n_actions}, {n_states}), got "
                f"{rewards.shape}"
            )
        observations = self.observations
        if observations is not None:
            observations = np.asarray(observations, dtype=float)
            if observations.ndim != 3 or observations.shape[:2] != (
                n_actions,
                n_states,
            ):
                raise ModelError(
                    "observations must have shape (|A|, |S|, |O|), got "
                    f"{observations.shape}"
                )
        null_states = self.null_states
        if null_states is not None:
            null_states = np.asarray(null_states, dtype=bool)
            if null_states.shape != (n_states,):
                raise ModelError(
                    f"null_states must be a mask of length {n_states}"
                )
        object.__setattr__(self, "transitions", transitions)
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "observations", observations)
        object.__setattr__(self, "null_states", null_states)
        object.__setattr__(
            self, "state_labels", _labels("s", n_states, self.state_labels)
        )
        object.__setattr__(
            self, "action_labels", _labels("a", n_actions, self.action_labels)
        )
        n_observations = 0 if observations is None else observations.shape[2]
        object.__setattr__(
            self,
            "observation_labels",
            _labels("o", n_observations, self.observation_labels),
        )

    def _init_sparse(self) -> None:
        """Validation-light path for sparse-container models.

        Shapes are cross-checked but the containers are kept as-is — no
        densification, so a 300k-state model can be analyzed.
        """
        transitions = self.transitions
        n_actions, n_states, _ = transitions.shape
        rewards = self.rewards
        if not isinstance(rewards, StructuredRewards):
            rewards = np.asarray(rewards, dtype=float)
        if rewards.shape != (n_actions, n_states):
            raise ModelError(
                f"rewards must have shape ({n_actions}, {n_states}), got "
                f"{rewards.shape}"
            )
        observations = self.observations
        if observations is not None and observations.shape[:2] != (
            n_actions,
            n_states,
        ):
            raise ModelError(
                "observations must have shape (|A|, |S|, |O|), got "
                f"{observations.shape}"
            )
        null_states = self.null_states
        if null_states is not None:
            null_states = np.asarray(null_states, dtype=bool)
            if null_states.shape != (n_states,):
                raise ModelError(
                    f"null_states must be a mask of length {n_states}"
                )
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "null_states", null_states)
        object.__setattr__(
            self, "state_labels", _labels("s", n_states, self.state_labels)
        )
        object.__setattr__(
            self, "action_labels", _labels("a", n_actions, self.action_labels)
        )
        n_observations = 0 if observations is None else observations.shape[2]
        object.__setattr__(
            self,
            "observation_labels",
            _labels("o", n_observations, self.observation_labels),
        )

    @property
    def is_sparse(self) -> bool:
        """True when the view wraps the sparse containers."""
        return isinstance(self.transitions, SparseTransitions)

    @property
    def n_states(self) -> int:
        return self.transitions.shape[1]

    @property
    def n_actions(self) -> int:
        return self.transitions.shape[0]

    @property
    def n_observations(self) -> int:
        return 0 if self.observations is None else self.observations.shape[2]

    def union_graph(self):
        """Structural union of all actions' transition supports.

        Dense array on the dense backend, CSR on the sparse one; both feed
        the same (sparse-capable) reachability and SCC routines.  Cached —
        reachability (R003/R004), dead-state (R101) and SCC (R202) passes
        all consume the same graph, so a 300k-state view builds it once.
        """
        cached = self._cache.get("union_graph")
        if cached is None:
            cached = union_transition_matrix(self.transitions)
            self._cache["union_graph"] = cached
        return cached

    def mean_chain(self):
        """``mean_a T_a`` — the Eq. 5 uniformly-random chain, cached.

        Shared by the RA-finiteness (R009), slow-absorption (R105) and SCC
        (R202) passes, which previously each rebuilt it.
        """
        cached = self._cache.get("mean_chain")
        if cached is None:
            cached = mean_transition_matrix(self.transitions)
            self._cache["mean_chain"] = cached
        return cached

    @classmethod
    def from_model(cls, model) -> "ModelView":
        """Build a view from an MDP, POMDP, or RecoveryModel (duck-typed).

        Duck typing (rather than isinstance on the model classes) keeps this
        module import-light so the recovery layer can depend on the analyzer
        without an import cycle.
        """
        if hasattr(model, "pomdp"):  # RecoveryModel
            pomdp = model.pomdp
            try:
                initial = model.initial_belief()
            except Exception:
                initial = None
            return cls(
                transitions=pomdp.transitions,
                rewards=pomdp.rewards,
                observations=pomdp.observations,
                state_labels=pomdp.state_labels,
                action_labels=pomdp.action_labels,
                observation_labels=pomdp.observation_labels,
                discount=pomdp.discount,
                null_states=model.null_states,
                rate_rewards=model.rate_rewards,
                recovery_notification=model.recovery_notification,
                terminate_state=model.terminate_state,
                terminate_action=model.terminate_action,
                operator_response_time=model.operator_response_time,
                initial_belief=initial,
            )
        return cls(
            transitions=model.transitions,
            rewards=model.rewards,
            observations=getattr(model, "observations", None),
            state_labels=model.state_labels,
            action_labels=model.action_labels,
            observation_labels=getattr(model, "observation_labels", ()),
            discount=model.discount,
        )

    @classmethod
    def from_npz(cls, path) -> "ModelView":
        """Load a :mod:`repro.io` archive *without* model validation.

        Accepts both ``pomdp`` and ``recovery-model`` archives — v1 dense
        and v2 backend-native (sparse archives analyze on their CSR
        containers, never densified); unlike
        :func:`repro.io.load_recovery_model`, a structurally broken model
        still yields a view (and hence a full diagnostic report) instead of
        an exception naming only the first problem.
        """
        # Lazy: repro.io imports the recovery layer, which preflights
        # through this package — a module-level import would cycle.
        from repro.io import _unpack_model_tensors

        with np.load(path, allow_pickle=False) as archive:
            kind = str(archive.get("kind", ""))
            if kind not in ("pomdp", "recovery-model"):
                raise ModelError(
                    f"{path} holds a {kind or 'unknown'} archive; expected a "
                    "pomdp or recovery-model archive"
                )
            transitions, observations, rewards = _unpack_model_tensors(
                archive
            )
            common = dict(
                transitions=transitions,
                rewards=rewards,
                observations=observations,
                state_labels=tuple(str(s) for s in archive["state_labels"]),
                action_labels=tuple(str(a) for a in archive["action_labels"]),
                observation_labels=tuple(
                    str(o) for o in archive["observation_labels"]
                ),
                discount=float(archive["discount"]),
            )
            if kind == "pomdp":
                return cls(**common)
            has_terminate = "terminate_state" in archive
            return cls(
                null_states=archive["null_states"],
                rate_rewards=np.asarray(archive["rate_rewards"], dtype=float),
                recovery_notification=bool(archive["recovery_notification"]),
                terminate_state=(
                    int(archive["terminate_state"]) if has_terminate else None
                ),
                terminate_action=(
                    int(archive["terminate_action"]) if has_terminate else None
                ),
                operator_response_time=(
                    float(archive["operator_response_time"])
                    if has_terminate
                    else None
                ),
                **common,
            )
