"""The "most likely" baseline policy (Section 5).

"A controller that performs probabilistic diagnosis on the system using the
Bayes rule, and chooses the cheapest recovery action that recovers from the
most likely fault."  Belief tracking is the same Bayesian machinery as the
POMDP controllers (Eq. 4); the difference is that it collapses the belief to
its fault-state mode before acting, so it never hedges across hypotheses and
never plans ahead.  Like the heuristic controller, it terminates through a
recovered-probability threshold.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.exceptions import ModelError
from repro.recovery.model import RecoveryModel

#: Transition mass into S_phi needed to count an action as "recovering" a state.
FIX_PROBABILITY = 1.0 - 1e-9


def cheapest_fixing_actions(model: RecoveryModel) -> dict[int, int]:
    """For every fault state, the cheapest action that surely repairs it.

    An action "recovers from" fault state ``s`` when it moves ``s`` into
    ``S_phi`` with probability one (the EMN model's recovery actions are
    deterministic, Section 5).  Cost ties break toward the shorter action,
    then the lower index.  Raises :class:`~repro.exceptions.ModelError` if
    some fault state has no surely-fixing action — such a model would need a
    lookahead controller, not this baseline.
    """
    pomdp = model.pomdp
    if pomdp.backend.is_sparse:
        raise ModelError(
            "the most-likely baseline requires the dense backend (it scans "
            "the full transition tensor for surely-fixing actions); convert "
            "the model with repro.recovery.convert_backend(model, 'dense')"
        )
    null_mass = pomdp.transitions[:, :, model.null_states].sum(axis=2)  # (A, S)
    mapping: dict[int, int] = {}
    for state in np.flatnonzero(model.fault_states):
        candidates = [
            action
            for action in np.flatnonzero(model.recovery_actions)
            if null_mass[action, state] >= FIX_PROBABILITY
        ]
        if not candidates:
            raise ModelError(
                f"no recovery action surely fixes state "
                f"{pomdp.state_labels[state]!r}; the most-likely baseline "
                "requires deterministic repairs"
            )
        mapping[int(state)] = min(
            candidates,
            key=lambda action: (
                -pomdp.rewards[action, state],  # cheapest (least negative) first
                model.durations[action],
                action,
            ),
        )
    return mapping


class MostLikelyPolicyEngine(PolicyEngine):
    """Bayes diagnosis + cheapest fixing action for the belief's mode."""

    def __init__(
        self,
        model: RecoveryModel,
        termination_probability: float = 0.9999,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        if not 0.0 < termination_probability <= 1.0:
            raise ValueError(
                "termination_probability must be in (0, 1], got "
                f"{termination_probability}"
            )
        self.termination_probability = termination_probability
        self._fixing_action = cheapest_fixing_actions(model)
        self._fault_indices = np.flatnonzero(model.fault_states)
        self.name = "most likely"

    def decide(self, session: RecoverySession) -> Decision:
        belief = session.belief_view()
        recovered = self.model.recovered_probability(belief)
        if recovered >= self.termination_probability:
            return self.terminate_decision()
        fault_mass = belief[self._fault_indices]
        most_likely = int(self._fault_indices[np.argmax(fault_mass)])
        return Decision(action=self._fixing_action[most_likely])


class MostLikelyController(RecoveryController):
    """Campaign-facing adapter over a :class:`MostLikelyPolicyEngine`."""

    def __init__(
        self,
        model: RecoveryModel,
        termination_probability: float = 0.9999,
        preflight: bool = False,
    ):
        super().__init__(
            engine=MostLikelyPolicyEngine(
                model,
                termination_probability=termination_probability,
                preflight=preflight,
            )
        )

    @property
    def termination_probability(self) -> float:
        return self.engine.termination_probability
