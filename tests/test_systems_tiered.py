"""Tests for the parametric tiered system family and its sparse RA chain."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.controllers.bounded import BoundedController
from repro.exceptions import ModelError
from repro.sim.campaign import run_campaign
from repro.systems.tiered import (
    build_tiered_system,
    solve_tiered_ra_bound,
    tiered_ra_chain,
)


@pytest.fixture(scope="module")
def small_tiered():
    return build_tiered_system(replicas=(2, 1, 3), tier_names=("web", "app", "db"))


class TestStructure:
    def test_state_count(self, small_tiered):
        # null + 2 faults per component (6 components) + s_T
        assert small_tiered.model.pomdp.n_states == 14

    def test_action_count(self, small_tiered):
        # 6 restarts + observe + a_T
        assert small_tiered.model.pomdp.n_actions == 8

    def test_observation_count_independent_of_replicas(self):
        small = build_tiered_system(replicas=(1, 1, 1))
        large = build_tiered_system(replicas=(5, 5, 5))
        assert small.model.pomdp.n_observations == 2**4
        assert large.model.pomdp.n_observations == 2**4

    def test_component_names(self, small_tiered):
        assert small_tiered.components == ("web1", "web2", "app1", "db1",
                                           "db2", "db3")

    def test_zombie_and_crash_state_selectors(self, small_tiered):
        assert len(small_tiered.zombie_states()) == 6
        assert len(small_tiered.crash_states()) == 6

    def test_zombie_only_variant(self):
        system = build_tiered_system(replicas=(2, 2), include_crash_faults=False)
        assert len(system.crash_states()) == 0
        assert system.model.pomdp.n_states == 2 + 4  # null + 4 zombies + s_T

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ModelError):
            build_tiered_system(replicas=())
        with pytest.raises(ModelError):
            build_tiered_system(replicas=(2, 0))

    def test_tier_name_count_checked(self):
        with pytest.raises(ModelError):
            build_tiered_system(replicas=(2, 2), tier_names=("only-one",))


class TestSemantics:
    def test_fault_rate_is_one_over_replicas(self, small_tiered):
        pomdp = small_tiered.model.pomdp
        rates = -small_tiered.model.rate_rewards
        assert np.isclose(rates[pomdp.state_index("crash(web1)")], 0.5)
        assert np.isclose(rates[pomdp.state_index("zombie(app1)")], 1.0)
        assert np.isclose(rates[pomdp.state_index("zombie(db2)")], 1.0 / 3.0)

    def test_restart_fixes_both_fault_kinds(self, small_tiered):
        pomdp = small_tiered.model.pomdp
        null = pomdp.state_index("null")
        restart = pomdp.action_index("restart(web2)")
        for label in ("crash(web2)", "zombie(web2)"):
            assert pomdp.transitions[restart, pomdp.state_index(label), null] == 1.0

    def test_crash_trips_tier_ping_zombie_does_not(self, small_tiered):
        pomdp = small_tiered.model.pomdp
        observe = small_tiered.observe_action
        crash = pomdp.state_index("crash(web1)")
        zombie = pomdp.state_index("zombie(web1)")
        # For the crash, every reachable observation has the web ping bit set.
        for obs in np.flatnonzero(pomdp.observations[observe, crash] > 0):
            assert "web!" in pomdp.observation_labels[obs]
        for obs in np.flatnonzero(pomdp.observations[observe, zombie] > 0):
            assert "web!" not in pomdp.observation_labels[obs]

    def test_no_recovery_notification(self, small_tiered):
        assert not small_tiered.model.recovery_notification

    def test_bounded_controller_recovers(self, small_tiered):
        controller = BoundedController(
            small_tiered.model, depth=1, refine_min_improvement=0.5
        )
        result = run_campaign(
            controller,
            fault_states=small_tiered.zombie_states(),
            injections=20,
            seed=3,
            monitor_tail=2.0,
        )
        assert result.summary.unrecovered == 0
        assert result.summary.early_terminations == 0


class TestSparseRAChain:
    def test_matches_dense_model(self):
        """The direct sparse construction must equal the dense RA-Bound."""
        for replicas in [(2, 2, 2), (1, 3), (4,)]:
            system = build_tiered_system(replicas=replicas)
            dense = ra_bound_vector(system.model.pomdp)
            sparse = solve_tiered_ra_bound(replicas)
            assert np.allclose(dense, sparse, atol=1e-8), replicas

    def test_chain_rows_stochastic(self):
        chain, rewards = tiered_ra_chain((3, 3))
        row_sums = np.asarray(chain.sum(axis=1)).ravel()
        assert np.allclose(row_sums, 1.0)
        assert np.all(rewards <= 0)

    def test_scales_to_large_state_counts(self):
        values = solve_tiered_ra_bound((5_000, 5_000))
        assert values.shape == (20_002,)
        assert np.all(np.isfinite(values))
        assert values[-1] == 0.0  # s_T
        assert np.all(values[:-1] < 0)

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ModelError):
            tiered_ra_chain(())
