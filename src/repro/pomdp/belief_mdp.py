"""The reachable belief-state MDP (Section 2's "belief-state MDP").

"Given an initial belief-state pi, the set of reachable belief-states is
countable due to the finite action and observation sets."  This module
materialises a finite prefix of that set — beliefs reachable within a given
horizon, deduplicated — as an explicit MDP whose transitions are the
observation-induced jumps of Eqs. 3-4, and solves it by value iteration
with a leaf estimate on the frontier.

With a *lower* bound on the frontier the result is a valid lower bound on
the POMDP value at every enumerated belief that is at least as tight as
``horizon`` applications of ``L_p`` to that bound — a reference that the
test suite uses to sandwich the online controller's tree values, and a
practical anytime solver for small recovery models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.model import POMDP

#: Beliefs are deduplicated by rounding to this many decimals.
DEDUP_DECIMALS = 10


@dataclass(frozen=True)
class BeliefMDP:
    """A finite reachable-belief MDP.

    Attributes:
        beliefs: ``(n, |S|)`` stack of enumerated beliefs; row 0 is the
            initial belief.
        frontier: boolean mask of beliefs whose successors were *not*
            enumerated (their value comes from the leaf estimate).
        successors: ``successors[i][a]`` is a list of
            ``(probability, belief_index)`` pairs for interior beliefs,
            ``None`` on the frontier.
        pomdp: the underlying model.
    """

    beliefs: np.ndarray
    frontier: np.ndarray
    successors: tuple
    pomdp: POMDP

    @property
    def n_beliefs(self) -> int:
        """Number of enumerated beliefs."""
        return self.beliefs.shape[0]


def _key(belief: np.ndarray) -> tuple:
    return tuple(np.round(belief, DEDUP_DECIMALS))


def expand_belief_mdp(
    pomdp: POMDP,
    initial: np.ndarray,
    horizon: int,
    max_beliefs: int = 2_000,
) -> BeliefMDP:
    """Enumerate beliefs reachable from ``initial`` within ``horizon`` steps.

    Expansion is breadth-first; a belief whose successors would exceed the
    horizon or ``max_beliefs`` stays on the frontier.
    """
    if horizon < 0:
        raise ModelError(f"horizon must be >= 0, got {horizon}")
    initial = np.asarray(initial, dtype=float)
    index: dict[tuple, int] = {_key(initial): 0}
    beliefs: list[np.ndarray] = [initial]
    depth_of: list[int] = [0]
    successors: list = [None]

    queue = [0]
    while queue:
        node = queue.pop(0)
        if depth_of[node] >= horizon:
            continue
        node_successors = []
        belief = beliefs[node]
        for action in range(pomdp.n_actions):
            predicted = belief @ pomdp.transitions[action]
            joint = predicted[:, None] * pomdp.observations[action]
            gamma = joint.sum(axis=0)
            branch = []
            for observation in np.flatnonzero(gamma > GAMMA_EPSILON):
                posterior = joint[:, observation] / gamma[observation]
                key = _key(posterior)
                if key not in index:
                    if len(beliefs) >= max_beliefs:
                        # Out of budget: leave this node on the frontier.
                        node_successors = None
                        break
                    index[key] = len(beliefs)
                    beliefs.append(posterior)
                    depth_of.append(depth_of[node] + 1)
                    successors.append(None)
                    queue.append(index[key])
                branch.append((float(gamma[observation]), index[key]))
            if node_successors is None:
                break
            node_successors.append(branch)
        successors[node] = node_successors

    frontier = np.array([s is None for s in successors])
    return BeliefMDP(
        beliefs=np.array(beliefs),
        frontier=frontier,
        successors=tuple(successors),
        pomdp=pomdp,
    )


def solve_belief_mdp(
    belief_mdp: BeliefMDP,
    leaf,
    tol: float = 1e-9,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Value-iterate the enumerated belief MDP with ``leaf`` on the frontier.

    ``leaf`` implements the leaf-value protocol
    (:class:`repro.pomdp.tree.LeafValue`).  Returns the value of every
    enumerated belief; with a valid lower bound as ``leaf`` each returned
    value is a valid (and typically much tighter) lower bound.
    """
    pomdp = belief_mdp.pomdp
    values = leaf.value_batch(belief_mdp.beliefs).astype(float)
    interior = np.flatnonzero(~belief_mdp.frontier)
    rewards = belief_mdp.beliefs @ pomdp.rewards.T  # (n, |A|)
    for _ in range(max_iterations):
        delta = 0.0
        for node in interior:
            best = -np.inf
            for action, branch in enumerate(belief_mdp.successors[node]):
                total = rewards[node, action]
                for probability, child in branch:
                    total += pomdp.discount * probability * values[child]
                best = max(best, total)
            # Value iteration from a valid lower bound is monotone
            # non-decreasing; never regress below the leaf estimate.
            best = max(best, values[node])
            delta = max(delta, abs(best - values[node]))
            values[node] = best
        if delta < tol:
            break
    return values
