"""Iterative lower-bound improvement — a miniature of Figure 5.

Shows the three bound families of Section 3.1 on the EMN recovery model
(the RA-Bound is the only one that converges undiscounted), then runs both
bootstrapping variants and prints the Figure 5(a)/(b) series: the bound at
the all-states-equally-likely belief tightening with every simulated
recovery, and the bound-vector count growing at most linearly.

Run:  python examples/bounds_improvement.py
"""

import numpy as np

from repro import (
    bi_pomdp_bound,
    blind_policy_bound,
    bootstrap_bounds,
    build_emn_system,
    ra_bound,
)
from repro.exceptions import DivergenceError
from repro.util import render_table

ITERATIONS = 12
SEED = 2006


def describe_bound(name: str, compute) -> list:
    try:
        value = compute()
        return [name, "finite", -value]
    except DivergenceError:
        return [name, "DIVERGES", float("nan")]


def main() -> None:
    system = build_emn_system()
    pomdp = system.model.pomdp
    uniform = np.full(pomdp.n_states, 1.0 / pomdp.n_states)

    print(
        render_table(
            ["Bound", "Convergence", "Cost upper bound at uniform"],
            [
                describe_bound("RA-Bound (this paper)",
                               lambda: ra_bound(pomdp, uniform)),
                describe_bound("BI-POMDP (worst action) [14]",
                               lambda: bi_pomdp_bound(pomdp, uniform)),
                describe_bound("Blind policy [6]",
                               lambda: blind_policy_bound(pomdp, uniform)),
            ],
            title="Undiscounted bounds on the EMN recovery model (Section 3.1)",
        )
    )
    print()

    traces = {}
    for variant in ("random", "average"):
        _, traces[variant] = bootstrap_bounds(
            system.model,
            iterations=ITERATIONS,
            depth=1,
            variant=variant,
            seed=SEED,
        )

    rows = [["0 (RA-Bound)",
             -traces["random"].initial_bound, "-",
             -traces["average"].initial_bound, "-"]]
    for i in range(ITERATIONS):
        rows.append(
            [
                str(i + 1),
                traces["random"].cost_upper_bounds[i],
                int(traces["random"].vector_counts[i]),
                traces["average"].cost_upper_bounds[i],
                int(traces["average"].vector_counts[i]),
            ]
        )
    print(
        render_table(
            ["Iteration", "Random bound", "Random |B|",
             "Average bound", "Average |B|"],
            rows,
            title="Bootstrapping phase (cf. Figures 5(a) and 5(b))",
        )
    )


if __name__ == "__main__":
    main()
