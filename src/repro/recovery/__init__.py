"""Recovery-model layer.

Wraps a plain POMDP with the recovery semantics of Section 3: the null-fault
state set ``S_phi`` (Condition 1), non-positive costs (Condition 2), rate
rewards, action durations, and the two model modifications of Figure 2 —
absorbing null states for systems *with* recovery notification, and the
terminate state/action pair ``(s_T, a_T)`` with operator-response-time
termination rewards for systems *without*.
"""

from repro.recovery.builder import RecoveryModelBuilder
from repro.recovery.model import (
    RecoveryModel,
    check_condition_1,
    check_condition_2,
    make_null_absorbing,
    termination_rewards,
    with_termination_action,
)
from repro.recovery.notification import detect_recovery_notification

__all__ = [
    "RecoveryModel",
    "RecoveryModelBuilder",
    "check_condition_1",
    "check_condition_2",
    "detect_recovery_notification",
    "make_null_absorbing",
    "termination_rewards",
    "with_termination_action",
]
