"""The ``python -m repro.obs`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.obs import SCHEMA_VERSION, session
from repro.obs.__main__ import main
from repro.obs.report import aggregate_stream, format_report


@pytest.fixture()
def run_file(tmp_path):
    """A small schema-valid run with one campaign's worth of events."""
    path = tmp_path / "run.jsonl"
    with session(path) as telemetry:
        telemetry.count("sim.episodes", 2)
        telemetry.count_process("cache.hits", 3)
        telemetry.count_process("cache.builds", 1)
        telemetry.event(
            "campaign_start", controller="bounded", injections=2, chunk_size=32
        )
        telemetry.event("episode_start", episode=0, fault_state=1)
        telemetry.event(
            "episode_end",
            episode=0,
            recovered=True,
            terminated=True,
            steps=3,
            cost=12.5,
        )
        telemetry.event(
            "refine", action=2, added=True, improvement=1.5, set_size=4
        )
        telemetry.event(
            "solver_dispatch", requested="auto", method="direct", n_states=8
        )
        telemetry.event("campaign_end", controller="bounded", episodes=2)
    return path


class TestReport:
    def test_report_command_renders(self, run_file, capsys):
        assert main(["report", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "Bound refinement" in out
        assert "direct" in out

    def test_aggregate_counts_outcomes(self, run_file):
        aggregate = aggregate_stream(run_file)
        report = format_report(aggregate)
        assert "Telemetry report" in report

    def test_report_shows_cache_hit_ratio(self, run_file, capsys):
        main(["report", str(run_file)])
        out = capsys.readouterr().out
        assert "cache" in out.lower()
        assert "75.0%" in out  # 3 hits / 4 lookups


class TestValidate:
    def test_valid_stream_exits_zero(self, run_file, capsys):
        assert main(["validate", str(run_file)]) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_invalid_stream_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        lines = [
            {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION},
            {"event": "decision", "seq": 1},  # missing action/terminate
            {"event": "session_end", "seq": 2},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "missing required fields" in out

    def test_garbage_line_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["validate", str(path)]) == 1
        assert "not JSON" in capsys.readouterr().out
