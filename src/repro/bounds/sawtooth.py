"""Sawtooth (point-set) upper bound on the POMDP value function.

The paper's conclusion lists "generation of upper bounds in addition to the
lower bounds to facilitate branch and bound techniques" as future work; this
module provides the standard representation for that job.  A sawtooth bound
stores

* corner values ``u_c(s)`` — a valid upper bound at each point belief
  (initialised from QMDP, or the trivial zero bound under Condition 2); and
* a set of interior points ``(b_i, u_i)`` with ``u_i`` a valid upper bound
  at ``b_i``.

The bound at an arbitrary belief ``pi`` is the sawtooth interpolation

    U(pi) = min_i  [ pi . u_c  +  (u_i - b_i . u_c) * min_s pi(s) / b_i(s) ]

(minimum over interior points, floored at the corner interpolation alone),
which is the tightest upper bound consistent with convexity of the value
function and the stored points.  Refinement mirrors the lower bound's
incremental update: a one-step Bellman backup of the current upper bound at
a chosen belief yields a new (smaller) valid upper value there.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.upper import QMDPBound
from repro.exceptions import ModelError
from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.model import POMDP

#: Minimum support ratio treated as zero in the interpolation.
SUPPORT_EPSILON = 1e-12


class SawtoothUpperBound:
    """Point-set upper bound with sawtooth interpolation.

    Implements the :class:`repro.pomdp.tree.LeafValue` protocol, so it can
    sit at the leaves of an *optimistic* lookahead or drive branch-and-bound
    pruning together with a :class:`~repro.bounds.vector_set.BoundVectorSet`
    lower bound.

    Args:
        pomdp: the model the bound is for.
        corner_values: per-state upper bounds at the point beliefs; when
            None they are initialised from QMDP (valid because full
            observability only helps).
        max_points: optional cap on stored interior points (oldest point
            evicted first).
    """

    def __init__(
        self,
        pomdp: POMDP,
        corner_values: np.ndarray | None = None,
        max_points: int | None = None,
    ):
        self.pomdp = pomdp
        if corner_values is None:
            corner_values = QMDPBound(pomdp).mdp_value
        corner_values = np.asarray(corner_values, dtype=float)
        if corner_values.shape != (pomdp.n_states,):
            raise ModelError(
                f"corner_values must have shape ({pomdp.n_states},), got "
                f"{corner_values.shape}"
            )
        self.corner_values = corner_values
        self.points: list[tuple[np.ndarray, float]] = []
        self.max_points = max_points

    def __len__(self) -> int:
        return len(self.points)

    def value(self, belief: np.ndarray) -> float:
        """Sawtooth-interpolated upper bound at ``belief``."""
        belief = np.asarray(belief, dtype=float)
        corner = float(belief @ self.corner_values)
        best = corner
        for point, point_value in self.points:
            gap = point_value - float(point @ self.corner_values)
            if gap >= 0:
                continue  # the point is no tighter than the corners
            support = point > SUPPORT_EPSILON
            if np.any(belief[~support] > SUPPORT_EPSILON):
                # pi is not absolutely continuous w.r.t. b_i along the
                # sawtooth: the interpolation coefficient is min over the
                # support, which is 0 here -> no improvement from this point.
                continue
            ratio = float(np.min(belief[support] / point[support]))
            best = min(best, corner + gap * ratio)
        return best

    def value_batch(self, beliefs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value` (loops over points, not beliefs)."""
        beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
        corner = beliefs @ self.corner_values
        best = corner.copy()
        for point, point_value in self.points:
            gap = point_value - float(point @ self.corner_values)
            if gap >= 0:
                continue
            support = point > SUPPORT_EPSILON
            feasible = ~np.any(beliefs[:, ~support] > SUPPORT_EPSILON, axis=1)
            if not feasible.any():
                continue
            ratios = np.min(
                beliefs[np.ix_(feasible, support)] / point[support], axis=1
            )
            candidate = corner[feasible] + gap * ratios
            best[feasible] = np.minimum(best[feasible], candidate)
        return best

    def backup(self, belief: np.ndarray) -> float:
        """One Bellman backup of this bound at ``belief`` (Eq. 2 with U).

        Returns the backed-up value; valid as an upper value at ``belief``
        because the operator ``L_p`` is monotone and the current bound is
        valid.
        """
        belief = np.asarray(belief, dtype=float)
        best = -np.inf
        for action in range(self.pomdp.n_actions):
            predicted = belief @ self.pomdp.transitions[action]
            joint = predicted[:, None] * self.pomdp.observations[action]
            gamma = joint.sum(axis=0)
            reachable = gamma > GAMMA_EPSILON
            posteriors = (joint[:, reachable] / gamma[reachable]).T
            future = self.value_batch(posteriors)
            total = float(belief @ self.pomdp.rewards[action])
            total += self.pomdp.discount * float(gamma[reachable] @ future)
            best = max(best, total)
        return best

    def refine_at(self, belief: np.ndarray) -> float:
        """Back up at ``belief`` and store the point; returns the decrease.

        Mirrors :func:`repro.bounds.incremental.refine_at` on the lower
        side.  Points that do not tighten the bound are discarded.
        """
        belief = np.asarray(belief, dtype=float)
        before = self.value(belief)
        backed_up = self.backup(belief)
        if backed_up >= before - SUPPORT_EPSILON:
            return 0.0
        if self.max_points is not None and len(self.points) >= self.max_points:
            self.points.pop(0)
        self.points.append((belief.copy(), backed_up))
        return before - backed_up
