"""Tests for the RA-Bound (Section 3.1) — the paper's core contribution."""

import numpy as np
import pytest

from repro.bounds.ra_bound import check_ra_finiteness, ra_bound, ra_bound_vector
from repro.exceptions import DivergenceError
from repro.mdp.model import MDP
from repro.mdp.value_iteration import value_iteration
from repro.pomdp.exact import solve_exact
from repro.util.validation import SUM_ATOL


class TestHandComputedExample:
    """The Figure 2(b) chain of the two-server example, by hand.

    After augmentation the example has states (null, fault_a, fault_b, s_T)
    and actions (restart_a, restart_b, observe, a_T), each chosen with
    probability 1/4 by the RA chain.
    """

    def test_null_state_value(self, simple_system):
        vector = ra_bound_vector(simple_system.model.pomdp)
        null = simple_system.null_state
        # From null: each step costs (0.5 + 0.5 + 0 + 0)/4 = 0.25 and the
        # chain terminates w.p. 1/4, so E[cost] = 0.25 * 4 = 1.
        assert np.isclose(vector[null], -1.0, atol=1e-8)

    def test_fault_state_values_symmetric(self, simple_system):
        vector = ra_bound_vector(simple_system.model.pomdp)
        assert np.isclose(
            vector[simple_system.fault_a], vector[simple_system.fault_b]
        )

    def test_fault_state_value(self, simple_system):
        """Hand-derived linear system for the fault states.

        From fault_a (t_op = 20, termination reward -10):
        4 v_f = (-0.5 + v_n) + (-1 + v_f) + (-0.5 + v_f) + (-10)
        with v_n = -1  =>  2 v_f = -13  =>  v_f = -6.5.
        """
        vector = ra_bound_vector(simple_system.model.pomdp)
        assert np.isclose(vector[simple_system.fault_a], -6.5, atol=1e-8)

    def test_terminate_state_is_zero(self, simple_system):
        vector = ra_bound_vector(simple_system.model.pomdp)
        terminate = simple_system.model.terminate_state
        assert np.isclose(vector[terminate], 0.0)


class TestSolverAgreement:
    @pytest.mark.parametrize(
        "method", ["gauss-seidel", "jacobi", "direct", "sparse", "auto"]
    )
    def test_methods_agree(self, emn_system, method):
        reference = ra_bound_vector(emn_system.model.pomdp, method="gauss-seidel")
        vector = ra_bound_vector(emn_system.model.pomdp, method=method)
        assert np.allclose(vector, reference, atol=1e-5)

    @pytest.mark.parametrize("seed", range(4))
    def test_property_sparse_and_dense_agree(self, seed):
        """Random discounted MDPs: the sparse backend lands within SUM_ATOL
        of the paper's Gauss-Seidel path."""
        rng = np.random.default_rng(seed)
        n_states = int(rng.integers(3, 8))
        n_actions = int(rng.integers(2, 5))
        mdp = MDP(
            transitions=rng.dirichlet(
                np.ones(n_states), size=(n_actions, n_states)
            ),
            rewards=-rng.uniform(0.0, 2.0, size=(n_actions, n_states)),
            discount=float(rng.uniform(0.5, 0.95)),
        )
        dense = ra_bound_vector(mdp, method="gauss-seidel", tol=1e-12)
        sparse = ra_bound_vector(mdp, method="sparse")
        assert float(np.max(np.abs(dense - sparse))) < SUM_ATOL

    def test_sparse_and_dense_agree_undiscounted(self, simple_system, emn_system):
        """The recovery-augmented undiscounted models: transient-block sparse
        solve vs Gauss-Seidel, within SUM_ATOL."""
        for system in (simple_system, emn_system):
            dense = ra_bound_vector(system.model.pomdp, method="gauss-seidel")
            sparse = ra_bound_vector(system.model.pomdp, method="sparse")
            assert float(np.max(np.abs(dense - sparse))) < SUM_ATOL


class TestLowerBoundProperty:
    def test_below_optimal_mdp_value(self, emn_system):
        """V_m^- <= V_m: random actions can't beat the optimum (Eq. 1 vs 5)."""
        pomdp = emn_system.model.pomdp
        vector = ra_bound_vector(pomdp)
        optimal = value_iteration(pomdp.to_mdp()).value
        assert np.all(vector <= optimal + 1e-8)

    def test_below_exact_pomdp_value_discounted(self):
        """Theorem 3.1 checked against ground truth on a discounted model."""
        from repro.systems.simple import build_simple_system

        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        vector = ra_bound_vector(pomdp)
        solution = solve_exact(pomdp, tol=1e-6)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=64):
            assert (
                float(belief @ vector)
                <= solution.value(belief) + solution.error_bound + 1e-8
            )

    def test_nonpositive_under_condition2(self, emn_system):
        vector = ra_bound_vector(emn_system.model.pomdp)
        assert np.all(vector <= 1e-12)


class TestFinitenessPreconditions:
    def test_unmodified_model_rejected(self):
        """Without Figure 2 modifications the RA chain accrues cost forever."""
        transitions = np.array([[[1.0]]])
        rewards = np.array([[-1.0]])
        mdp = MDP(transitions=transitions, rewards=rewards)
        with pytest.raises(DivergenceError, match="recurrent"):
            ra_bound_vector(mdp)

    def test_check_passes_for_augmented_models(self, simple_system, emn_system):
        check_ra_finiteness(simple_system.model.pomdp)
        check_ra_finiteness(emn_system.model.pomdp)

    def test_discounted_models_always_pass(self):
        mdp = MDP(
            transitions=np.array([[[1.0]]]),
            rewards=np.array([[-1.0]]),
            discount=0.9,
        )
        check_ra_finiteness(mdp)  # no exception
        vector = ra_bound_vector(mdp)
        assert np.isclose(vector[0], -10.0)

    def test_notified_variant_absorbs_null(self, simple_notified_system):
        """Figure 2(a): null absorbing and free => RA-Bound finite, null = 0."""
        model = simple_notified_system.model
        vector = ra_bound_vector(model.pomdp)
        null = simple_notified_system.null_state
        assert np.isclose(vector[null], 0.0)
        assert np.all(vector <= 1e-12)


class TestConvenienceWrapper:
    def test_ra_bound_at_belief(self, simple_system):
        pomdp = simple_system.model.pomdp
        vector = ra_bound_vector(pomdp)
        belief = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
        assert np.isclose(ra_bound(pomdp, belief), float(belief @ vector))
