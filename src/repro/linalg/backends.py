"""Backend selection and dense/sparse model conversion.

A model's *backend* is determined by what its transition container is:
raw ndarrays mean :data:`DENSE`, the containers of
:mod:`repro.linalg.containers` mean :data:`SPARSE`.  Model constructors
accept ``backend="auto" | "dense" | "sparse"`` and use
:func:`resolve_backend` — the same size/density heuristic that routes the
RA-Bound linear solve (:func:`repro.mdp.linear_solvers.select_method`) —
to decide whether a dense input should be converted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ModelError
from repro.linalg.containers import (
    SparseObservations,
    SparseTransitions,
    StructuredRewards,
)
from repro.mdp.linear_solvers import SPARSE_DENSITY_CUTOFF, SPARSE_MIN_STATES

#: Entries smaller than this count as structural zeros when estimating
#: density and when converting dense tensors to sparse containers.
STRUCTURAL_EPSILON = 0.0


@dataclass(frozen=True)
class Backend:
    """A named storage strategy for model tensors."""

    name: str

    @property
    def is_sparse(self) -> bool:
        return self.name == "sparse"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


DenseBackend = Backend("dense")
SparseBackend = Backend("sparse")

_BACKENDS = {"dense": DenseBackend, "sparse": SparseBackend}


def backend_of(transitions) -> Backend:
    """The backend a transition container implies."""
    if isinstance(transitions, SparseTransitions):
        return SparseBackend
    return DenseBackend


def resolve_backend(
    spec: str, n_states: int, density: float | None = None
) -> Backend:
    """Resolve a ``backend=`` argument to a concrete :class:`Backend`.

    ``"auto"`` reuses the PR 2 solver heuristic: go sparse at or above
    :data:`~repro.mdp.linear_solvers.SPARSE_MIN_STATES` states when the
    transition density is at or below
    :data:`~repro.mdp.linear_solvers.SPARSE_DENSITY_CUTOFF` (unknown
    density counts as sparse-friendly — callers that already hold dense
    tensors pass the measured density).
    """
    if spec in _BACKENDS:
        return _BACKENDS[spec]
    if spec != "auto":
        raise ModelError(
            f"unknown backend {spec!r}: expected 'auto', 'dense' or 'sparse'"
        )
    if n_states < SPARSE_MIN_STATES:
        return DenseBackend
    if density is not None and density > SPARSE_DENSITY_CUTOFF:
        return DenseBackend
    return SparseBackend


def transition_density(transitions) -> float:
    """Fraction of structurally non-zero transition entries."""
    if isinstance(transitions, SparseTransitions):
        filled = transitions.base.nnz * transitions.n_actions + transitions.rows.nnz
        return filled / float(transitions.n_actions * transitions.n_states**2)
    array = np.asarray(transitions)
    return float(np.count_nonzero(array)) / max(array.size, 1)


# -- dense -> sparse ----------------------------------------------------


def sparsify_transitions(transitions: np.ndarray) -> SparseTransitions:
    """Convert a dense ``(|A|, |S|, |S|)`` tensor to row-override form.

    The base is the element-wise most common row pattern — here simply the
    first action's matrix — and every row of every other action that
    differs from it becomes an override.  Exact comparison keeps the
    conversion lossless: densifying any action matrix reproduces the
    input bit-for-bit.
    """
    tensor = np.asarray(transitions, dtype=float)
    n_actions = tensor.shape[0]
    base = tensor[0]
    row_action, row_state, blocks = [], [], []
    for action in range(n_actions):
        differs = np.flatnonzero(np.any(tensor[action] != base, axis=1))
        if differs.size:
            row_action.append(np.full(differs.size, action))
            row_state.append(differs)
            blocks.append(sp.csr_matrix(tensor[action][differs]))
    if blocks:
        rows = sp.vstack(blocks, format="csr")
        actions = np.concatenate(row_action)
        states = np.concatenate(row_state)
    else:
        rows = sp.csr_matrix((0, base.shape[0]))
        actions = np.zeros(0, dtype=np.int64)
        states = np.zeros(0, dtype=np.int64)
    return SparseTransitions(
        base=sp.csr_matrix(base),
        row_action=actions,
        row_state=states,
        rows=rows,
        n_actions=n_actions,
    )


def sparsify_observations(observations: np.ndarray) -> SparseObservations:
    """Convert a dense ``(|A|, |S|, |O|)`` tensor to base + overrides."""
    tensor = np.asarray(observations, dtype=float)
    base = tensor[0]
    overrides = {
        action: sp.csr_matrix(tensor[action])
        for action in range(1, tensor.shape[0])
        if np.any(tensor[action] != base)
    }
    return SparseObservations(
        base=sp.csr_matrix(base), overrides=overrides, n_actions=tensor.shape[0]
    )


def sparsify_rewards(rewards: np.ndarray) -> StructuredRewards:
    """Convert a dense ``(|A|, |S|)`` reward array to structured form.

    The generic conversion uses a zero rank-one part and stores every
    non-zero entry as a replacement override, which keeps scalar lookups
    bit-exact against the dense source.  Builders that know their reward
    decomposition construct :class:`StructuredRewards` directly instead.
    """
    array = np.asarray(rewards, dtype=float)
    n_actions, n_states = array.shape
    return StructuredRewards(
        time_scale=np.zeros(n_actions),
        rate=np.zeros(n_states),
        fixed=np.zeros(n_actions),
        override=sp.csr_matrix(array),
    )


# -- sparse -> dense ----------------------------------------------------


def densify_transitions(transitions) -> np.ndarray:
    """Materialise per-action transition matrices as a dense tensor."""
    if not isinstance(transitions, SparseTransitions):
        return np.asarray(transitions, dtype=float)
    tensor = np.broadcast_to(
        transitions.base.toarray(),
        (transitions.n_actions, transitions.n_states, transitions.n_states),
    ).copy()
    block = transitions.rows.toarray()
    tensor[transitions.row_action, transitions.row_state] = block
    return tensor


def densify_observations(observations) -> np.ndarray:
    if not isinstance(observations, SparseObservations):
        return np.asarray(observations, dtype=float)
    tensor = np.broadcast_to(
        observations.base.toarray(), observations.shape
    ).copy()
    for action, matrix in observations.overrides.items():
        tensor[action] = matrix.toarray()
    return tensor


def densify_rewards(rewards) -> np.ndarray:
    if isinstance(rewards, StructuredRewards):
        return rewards.full()
    return np.asarray(rewards, dtype=float)


__all__ = [
    "Backend",
    "DenseBackend",
    "SparseBackend",
    "backend_of",
    "densify_observations",
    "densify_rewards",
    "densify_transitions",
    "resolve_backend",
    "sparsify_observations",
    "sparsify_rewards",
    "sparsify_transitions",
    "transition_density",
]
