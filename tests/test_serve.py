"""The policy service and daemon: sessions, persistence, protocol, shutdown."""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.io import load_bound_set
from repro.obs import telemetry as obs
from repro.obs.trace import span_tree
from repro.serve import PolicyDaemon, PolicyService, ServiceClient, ServiceConfig
from repro.serve.protocol import decode_request, handle_line


@pytest.fixture()
def service(simple_system, tmp_path):
    config = ServiceConfig(
        socket_path=str(tmp_path / "repro.sock"),
        bounds_path=str(tmp_path / "bounds.npz"),
        checkpoint_interval=0,
        drain_timeout=1.0,
    )
    return PolicyService(config, model=simple_system.model)


def _drive_to_termination(service, session_id, env_seed=3):
    """Run one recovery to the terminate decision via the service API."""
    from repro.sim.environment import RecoveryEnvironment

    environment = RecoveryEnvironment(service.model, seed=env_seed)
    environment.inject(int(np.flatnonzero(service.model.fault_states)[0]))
    passive = np.flatnonzero(service.model.passive_actions)
    service.observe(session_id, int(passive[0]), environment.initial_observation())
    for _ in range(50):
        decision = service.decide(session_id)
        if decision["terminate"]:
            return decision
        result = environment.execute(decision["action"])
        service.observe(session_id, decision["action"], result.observation)
    raise AssertionError("recovery did not terminate")


class TestPolicyService:
    def test_session_lifecycle(self, service):
        sid = service.open_session()
        assert service.live_sessions == 1
        decision = _drive_to_termination(service, sid)
        assert decision["done"] is True
        service.close_session(sid)
        assert service.live_sessions == 0

    def test_unknown_and_duplicate_sessions(self, service):
        with pytest.raises(ServeError, match="unknown session"):
            service.decide("nope")
        service.open_session(session_id="mine")
        with pytest.raises(ServeError, match="already open"):
            service.open_session(session_id="mine")
        service.close_session("mine")
        with pytest.raises(ServeError, match="unknown session"):
            service.close_session("mine")

    def test_sessions_isolated(self, service):
        a = service.open_session()
        b = service.open_session()
        passive = int(np.flatnonzero(service.model.passive_actions)[0])
        service.observe(a, passive, 0)
        left = service._session(a).belief
        right = service._session(b).belief
        assert not np.array_equal(left, right)

    def test_refine_false_session_freezes_bounds(self, service):
        sid = service.open_session(refine=False)
        before = service.engine.bound_set.vectors.shape[0]
        _drive_to_termination(service, sid)
        assert service.engine.bound_set.vectors.shape[0] == before

    def test_checkpoint_and_warm_start(self, service, simple_system):
        sid = service.open_session()
        _drive_to_termination(service, sid)
        path = service.checkpoint()
        assert path is not None
        reloaded = load_bound_set(path, model=simple_system.model)
        np.testing.assert_array_equal(
            reloaded.vectors, service.engine.bound_set.vectors
        )
        warm = PolicyService(service.config, model=simple_system.model)
        assert warm.started_warm
        np.testing.assert_array_equal(
            warm.engine.bound_set.vectors, service.engine.bound_set.vectors
        )

    def test_warm_decisions_match_checkpoint_state(self, service, simple_system):
        """A read-only session on a warm restart decides exactly as a
        read-only session on the original service after the checkpoint —
        the smoke check's resume-identical property."""
        sid = service.open_session()
        _drive_to_termination(service, sid)
        service.checkpoint()
        warm = PolicyService(service.config, model=simple_system.model)
        old = service.open_session(refine=False)
        new = warm.open_session(refine=False)
        passive = int(np.flatnonzero(service.model.passive_actions)[0])
        service.observe(old, passive, 0)
        warm.observe(new, passive, 0)
        for _ in range(10):
            left = service.decide(old)
            right = warm.decide(new)
            assert left == right
            if left["terminate"]:
                break
            service.observe(old, left["action"], 1)
            warm.observe(new, right["action"], 1)

    def test_drain_rejects_new_sessions(self, service):
        sid = service.open_session()
        closer = threading.Timer(0.1, service.close_session, args=(sid,))
        closer.start()
        try:
            assert service.drain(timeout=5.0) == 0
        finally:
            closer.cancel()
        with pytest.raises(ServeError, match="draining"):
            service.open_session()

    def test_drain_times_out_on_stuck_session(self, service):
        service.open_session()
        assert service.drain(timeout=0.05) == 1

    def test_stats_shape(self, service):
        sid = service.open_session()
        service.decide(sid)
        stats = service.stats()
        assert stats["live_sessions"] == 1
        assert stats["decisions"] == 1
        assert stats["bound_vectors"] >= 1
        assert stats["started_warm"] is False

    def test_live_session_gauge_and_span_labels(self, service):
        with obs.session(trace=True) as telemetry:
            a = service.open_session()
            b = service.open_session()
            assert telemetry.gauges["serve.live_sessions"] == 2.0
            service.decide(a)
            service.decide(b)
            service.close_session(a)
            assert telemetry.gauges["serve.live_sessions"] == 1.0
            forests = span_tree(telemetry.spans, by_session=True)
        assert a in forests and b in forests
        assert forests[a][0]["name"] == "controller.decision"
        assert forests[a][0]["args"]["session"] == a


class TestProtocol:
    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError):
            decode_request("not json")
        with pytest.raises(ServeError):
            decode_request("[1,2]")
        with pytest.raises(ServeError):
            decode_request('{"no_op": 1}')

    def test_handle_line_error_codes(self, service):
        opened: set[str] = set()
        bad = handle_line(service, "garbage", opened)
        assert (bad["ok"], bad["error"]) == (False, "bad-request")
        unknown = handle_line(service, '{"op": "frobnicate"}', opened)
        assert unknown["error"] == "bad-request"
        missing = handle_line(service, '{"op": "decide"}', opened)
        assert missing["error"] == "bad-request"
        stale = handle_line(service, '{"op": "decide", "session": "x"}', opened)
        assert stale["error"] == "serve-error"

    def test_handle_line_tracks_opened_sessions(self, service):
        opened: set[str] = set()
        response = handle_line(service, '{"op": "open"}', opened)
        assert response["ok"] and opened == {response["session"]}
        handle_line(
            service, json.dumps({"op": "close", "session": response["session"]}), opened
        )
        assert opened == set()


@pytest.fixture()
def daemon(service):
    daemon = PolicyDaemon(service)
    thread = threading.Thread(
        target=lambda: daemon.run(install_signals=False), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(service.config.socket_path)
            probe.close()
            break
        except OSError:
            time.sleep(0.02)
    yield daemon
    daemon.request_shutdown()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestDaemon:
    def test_round_trip(self, daemon, service):
        with ServiceClient(service.config.socket_path) as client:
            assert client.ping()
            sid = client.open_session()
            decision = client.decide(sid)
            assert isinstance(decision["action"], int)
            client.observe(sid, decision["action"], 0)
            stats = client.stats()
            assert stats["live_sessions"] == 1
            client.close_session(sid)

    def test_concurrent_clients(self, daemon, service):
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                with ServiceClient(service.config.socket_path) as client:
                    sid = client.open_session(session_id=f"c{index}")
                    for _ in range(5):
                        decision = client.decide(sid)
                        if decision["terminate"]:
                            break
                        client.observe(sid, decision["action"], 0)
                    client.close_session(sid)
            except Exception as error:  # noqa: BLE001 — collected for the assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        assert service.live_sessions == 0

    def test_disconnect_releases_sessions(self, daemon, service):
        client = ServiceClient(service.config.socket_path)
        client.open_session(session_id="leaky")
        assert service.live_sessions == 1
        client.close()
        deadline = time.monotonic() + 5.0
        while service.live_sessions and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.live_sessions == 0

    def test_shutdown_op_checkpoints_and_unlinks(self, daemon, service, tmp_path):
        with ServiceClient(service.config.socket_path) as client:
            sid = client.open_session()
            client.decide(sid)
            client.close_session(sid)
            client.shutdown()
        deadline = time.monotonic() + 10.0
        import os

        while os.path.exists(service.config.socket_path):
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert os.path.exists(service.config.bounds_path)
