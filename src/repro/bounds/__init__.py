"""POMDP value-function bounds (Sections 3 and 4 of the paper).

* :mod:`repro.bounds.ra_bound` — the paper's contribution: the random-action
  lower bound, computed on the underlying MDP state space (Eq. 5).
* :mod:`repro.bounds.bi_pomdp` — the BI-POMDP worst-action bound of
  Washington [14], which Section 3.1 shows diverges on undiscounted recovery
  models.
* :mod:`repro.bounds.blind_policy` — Hauskrecht's blind-policy bounds [6],
  divergent with recovery notification, finite without.
* :mod:`repro.bounds.vector_set` — piecewise-linear lower bounds as sets of
  bounding hyperplanes (Eq. 6), with optional storage limits and
  least-used eviction (Section 4.3).
* :mod:`repro.bounds.incremental` — the incremental linear-function
  refinement of Hauskrecht [7] used in Section 4.1, plus the empirical
  checker for Property 1's invariant ``V_B^- <= L_p V_B^-``.
* :mod:`repro.bounds.upper` — upper bounds (trivial zero, QMDP, FIB); listed
  as future work in the paper's conclusion and used here to report bound
  gaps.
"""

from repro.bounds.bi_pomdp import bi_pomdp_bound, bi_pomdp_vector
from repro.bounds.blind_policy import blind_policy_bound, blind_policy_vectors
from repro.bounds.incremental import (
    incremental_update,
    refine_at,
    verify_lower_bound_invariant,
)
from repro.bounds.ra_bound import ra_bound, ra_bound_vector
from repro.bounds.sawtooth import SawtoothUpperBound
from repro.bounds.upper import FIBBound, QMDPBound, TrivialUpperBound, fib_vectors
from repro.bounds.vector_set import BoundVectorSet

__all__ = [
    "BoundVectorSet",
    "SawtoothUpperBound",
    "FIBBound",
    "QMDPBound",
    "TrivialUpperBound",
    "bi_pomdp_bound",
    "bi_pomdp_vector",
    "blind_policy_bound",
    "blind_policy_vectors",
    "fib_vectors",
    "incremental_update",
    "ra_bound",
    "ra_bound_vector",
    "refine_at",
    "verify_lower_bound_invariant",
]
