"""Tests for repro.pomdp.model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.pomdp.model import POMDP


def tiny_pomdp(discount: float = 1.0) -> POMDP:
    transitions = np.array(
        [
            [[0.0, 1.0], [0.0, 1.0]],
            [[1.0, 0.0], [0.0, 1.0]],
        ]
    )
    observations = np.array(
        [
            [[0.9, 0.1], [0.2, 0.8]],
            [[0.9, 0.1], [0.2, 0.8]],
        ]
    )
    rewards = np.array([[-0.5, 0.0], [-1.0, 0.0]])
    return POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=("fault", "null"),
        action_labels=("repair", "idle"),
        observation_labels=("alarm", "clear"),
        discount=discount,
    )


class TestConstruction:
    def test_shapes(self):
        pomdp = tiny_pomdp()
        assert pomdp.n_states == 2
        assert pomdp.n_actions == 2
        assert pomdp.n_observations == 2

    def test_non_stochastic_observations_rejected(self):
        with pytest.raises(ModelError):
            POMDP(
                transitions=np.array([[[1.0]]]),
                observations=np.array([[[0.5, 0.4]]]),
                rewards=np.array([[0.0]]),
            )

    def test_observation_shape_mismatch_rejected(self):
        with pytest.raises(ModelError, match="observations"):
            POMDP(
                transitions=np.array([[[1.0, 0.0], [0.0, 1.0]]]),
                observations=np.array([[[1.0]]]),
                rewards=np.array([[0.0, 0.0]]),
            )

    def test_zero_observations_rejected(self):
        with pytest.raises(ModelError):
            POMDP(
                transitions=np.array([[[1.0]]]),
                observations=np.zeros((1, 1, 0)),
                rewards=np.array([[0.0]]),
            )

    def test_duplicate_observation_labels_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            POMDP(
                transitions=np.array([[[1.0]]]),
                observations=np.array([[[0.5, 0.5]]]),
                rewards=np.array([[0.0]]),
                observation_labels=("o", "o"),
            )


class TestIndices:
    def test_label_lookups(self):
        pomdp = tiny_pomdp()
        assert pomdp.state_index("null") == 1
        assert pomdp.action_index("idle") == 1
        assert pomdp.observation_index("clear") == 1


class TestToMDP:
    def test_strips_observations(self):
        pomdp = tiny_pomdp()
        mdp = pomdp.to_mdp()
        assert np.array_equal(mdp.transitions, pomdp.transitions)
        assert np.array_equal(mdp.rewards, pomdp.rewards)
        assert mdp.state_labels == pomdp.state_labels
        assert mdp.discount == pomdp.discount


class TestWithDiscount:
    def test_copy_with_new_discount(self):
        pomdp = tiny_pomdp()
        discounted = pomdp.with_discount(0.7)
        assert discounted.discount == 0.7
        assert pomdp.discount == 1.0
        assert np.array_equal(discounted.observations, pomdp.observations)
