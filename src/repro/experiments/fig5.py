"""Figure 5: iterative lower-bound improvement during bootstrapping.

Figure 5(a) plots the negated lower bound (an upper bound on recovery cost)
at the uniform belief ``{1/|S|}`` against bootstrap iterations, for the
Random and Average variants; Figure 5(b) plots the number of bound vectors.
The paper's observations, which this harness lets you verify:

* the bounds improve monotonically and rapidly at first, then stabilise;
* the Average variant converges faster and tighter than Random on this
  system, while growing fewer bound vectors;
* growth of ``|B|`` is at worst linear (at most one vector per update).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.bootstrap import BootstrapResult, bootstrap_bounds
from repro.systems.emn import EMNSystem, build_emn_system
from repro.util.tables import render_table

#: Approximate series read off the published Figure 5 for shape comparison
#: (upper bound on cost at iterations 1, 5, 10, 20; vector count at 20).
PAPER_FIG5_SHAPE = {
    "random": {"start": 5800.0, "mid": 2000.0, "late": 900.0, "end": 500.0,
               "vectors": 17},
    "average": {"start": 5000.0, "mid": 900.0, "late": 600.0, "end": 450.0,
                "vectors": 11},
}


@dataclass(frozen=True)
class Fig5Result:
    """Both variants' bootstrap traces over the same model."""

    random: BootstrapResult
    average: BootstrapResult
    iterations: int

    def variant(self, name: str) -> BootstrapResult:
        """Trace for ``"random"`` or ``"average"``."""
        if name == "random":
            return self.random
        if name == "average":
            return self.average
        raise KeyError(name)


def run_fig5(
    system: EMNSystem | None = None,
    iterations: int = 20,
    depth: int = 1,
    seed: int = 2006,
) -> Fig5Result:
    """Run both bootstrap variants with the paper's configuration.

    The paper uses tree depth 1 for this experiment and 20 iterations; each
    variant gets a fresh RA-Bound-seeded vector set and an independent RNG
    stream derived from ``seed``.
    """
    if system is None:
        system = build_emn_system()
    _, random_trace = bootstrap_bounds(
        system.model,
        iterations=iterations,
        depth=depth,
        variant="random",
        seed=seed,
    )
    _, average_trace = bootstrap_bounds(
        system.model,
        iterations=iterations,
        depth=depth,
        variant="average",
        seed=seed + 1,
    )
    return Fig5Result(
        random=random_trace, average=average_trace, iterations=iterations
    )


def format_fig5a(result: Fig5Result) -> str:
    """Figure 5(a) as a table: upper bound on cost per iteration."""
    rows = []
    rows.append(
        ["0 (RA-Bound)", -result.random.initial_bound, -result.average.initial_bound]
    )
    for i in range(result.iterations):
        rows.append(
            [
                str(i + 1),
                result.random.cost_upper_bounds[i],
                result.average.cost_upper_bounds[i],
            ]
        )
    return render_table(
        ["Iteration", "Random (upper bound on cost)", "Average (upper bound on cost)"],
        rows,
        title=(
            "Figure 5(a): Iterative bounds improvement at the uniform belief "
            "{1/|S|}\n(paper shape: rapid drop from ~5-6k to <1k within the "
            "first few iterations,\nAverage tighter and faster than Random)"
        ),
    )


def format_fig5b(result: Fig5Result) -> str:
    """Figure 5(b) as a table: bound-vector count per iteration."""
    rows = [
        [
            str(i + 1),
            int(result.random.vector_counts[i]),
            int(result.average.vector_counts[i]),
        ]
        for i in range(result.iterations)
    ]
    return render_table(
        ["Iteration", "Random |B|", "Average |B|"],
        rows,
        title=(
            "Figure 5(b): Number of bound vectors\n(paper shape: at-worst-"
            "linear growth; Average grows more slowly than Random)"
        ),
    )


def shape_checks(result: Fig5Result) -> dict[str, bool]:
    """Machine-checkable versions of the paper's Figure 5 claims."""
    checks = {}
    for name in ("random", "average"):
        trace = result.variant(name)
        series = trace.cost_upper_bounds
        checks[f"{name}: bound never worsens"] = bool(
            np.all(np.diff(np.concatenate([[-trace.initial_bound], series])) <= 1e-6)
        )
        early_gain = -trace.initial_bound - series[min(4, len(series) - 1)]
        late_gain = series[min(4, len(series) - 1)] - series[-1]
        checks[f"{name}: improvement is front-loaded"] = bool(
            early_gain >= late_gain
        )
        growth = np.diff(np.concatenate([[1], trace.vector_counts]))
        checks[f"{name}: |B| grows at most one per update"] = bool(
            np.all(growth <= trace.update_counts)
        )
    checks["average tighter than random at the end"] = bool(
        result.average.cost_upper_bounds[-1]
        <= result.random.cost_upper_bounds[-1] * 1.25
    )
    return checks
