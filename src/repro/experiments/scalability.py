"""RA-Bound scalability (Section 4.3's state-space claim).

"This linear system is defined on the original state-space of the POMDP
(S) and, with the appropriate sparse structure, can be solved using
standard, numerically stable linear system solvers for models with up to
hundreds of thousands of states."  This experiment measures exactly that:
RA-Bound solve time on the tiered model family
(:mod:`repro.systems.tiered`) as the state count grows from tens to
hundreds of thousands.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bounds.ra_bound import ra_bound_vector
from repro.systems.tiered import build_tiered_system, solve_tiered_ra_bound
from repro.util.tables import render_table

#: Default replica counts per tier for the sweep (3 tiers each).
DEFAULT_SIZES = (2, 10, 100, 1_000, 10_000, 50_000)


@dataclass(frozen=True)
class ScalabilityPoint:
    """One measurement of the sweep."""

    replicas_per_tier: int
    n_states: int
    solve_seconds: float
    sample_value: float


def run_scalability(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    n_tiers: int = 3,
) -> list[ScalabilityPoint]:
    """Time the sparse RA-Bound solve across model sizes.

    Each point is a 3-tier system with ``r`` replicas per tier, i.e.
    ``2 + 2 * n_tiers * r`` states.  Small instances are cross-checked
    against the dense solver elsewhere (the test suite); here we record
    wall-clock time and a sample value for sanity.
    """
    points = []
    for r in sizes:
        replicas = tuple([r] * n_tiers)
        started = time.perf_counter()
        values = solve_tiered_ra_bound(replicas)
        elapsed = time.perf_counter() - started
        points.append(
            ScalabilityPoint(
                replicas_per_tier=r,
                n_states=values.shape[0],
                solve_seconds=elapsed,
                sample_value=float(values[1]),
            )
        )
    return points


def verify_against_dense(replicas: tuple[int, ...]) -> float:
    """Max |sparse - dense| RA-Bound discrepancy on a small instance.

    The direct sparse construction must agree with the RA-Bound computed
    from the fully-materialised recovery model.
    """
    system = build_tiered_system(replicas=replicas)
    dense = ra_bound_vector(system.model.pomdp)
    sparse = solve_tiered_ra_bound(replicas)
    return float(np.max(np.abs(dense - sparse)))


def format_scalability(points: list[ScalabilityPoint]) -> str:
    """Render the sweep as a table."""
    rows = [
        [
            point.replicas_per_tier,
            point.n_states,
            point.solve_seconds * 1000.0,
            point.sample_value,
        ]
        for point in points
    ]
    return render_table(
        ["Replicas/tier", "States", "RA solve (ms)", "V-(first fault)"],
        rows,
        title=(
            "RA-Bound scalability on the tiered model family (Section 4.3: "
            "sparse\nlinear solves scale to hundreds of thousands of states)"
        ),
    )
