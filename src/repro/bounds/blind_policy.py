"""Blind-policy bounds (Hauskrecht [6]).

One bound vector per action: ``V_m^{ba}(s, a)`` is the value of starting in
``s`` and blindly repeating action ``a`` forever (Eq. 1 without the max,
restricted to a single action).  The POMDP bound at ``pi`` is
``max_a sum_s pi(s) V_m^{ba}(s, a)``.

Section 3.1's comparison: with recovery notification the bound is infinite
for most recovery models, because no single recovery action makes progress
in every state; without recovery notification the terminate action ``a_T``
always yields a finite vector, so the bound is trivially finite (but
typically much looser than a refined RA-Bound).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DivergenceError
from repro.mdp.linear_solvers import solve_markov_reward
from repro.mdp.model import MDP
from repro.pomdp.model import POMDP


def blind_policy_vectors(
    model: MDP | POMDP,
    skip_divergent: bool = False,
    tol: float = 1e-10,
) -> dict[int, np.ndarray]:
    """Per-action blind-policy value vectors.

    Args:
        model: the (possibly augmented) recovery model.
        skip_divergent: when True, actions whose blind chain accrues
            unbounded cost are silently omitted (their bound vector is
            "minus infinity" and can never be the max of Eq. 6); when
            False, the first divergent action raises.

    Returns:
        Mapping from action index to its value vector.  An empty mapping
        means *every* blind policy diverges, i.e. the bound itself is
        infinite — the "with recovery notification" failure of Section 3.1.
    """
    mdp = model.to_mdp() if isinstance(model, POMDP) else model
    vectors: dict[int, np.ndarray] = {}
    for action in range(mdp.n_actions):
        policy = np.full(mdp.n_states, action)
        chain, reward = mdp.policy_chain(policy)
        try:
            vectors[action] = solve_markov_reward(
                chain, reward, discount=mdp.discount, tol=tol
            )
        except DivergenceError:
            if not skip_divergent:
                raise DivergenceError(
                    f"blind policy for action {mdp.action_labels[action]!r} "
                    "accrues unbounded cost (Section 3.1: no single recovery "
                    "action progresses in all states)"
                )
    return vectors


def blind_policy_bound(
    model: MDP | POMDP, belief: np.ndarray, skip_divergent: bool = True
) -> float:
    """``max_a sum_s pi(s) V_m^{ba}(s, a)`` at ``belief``.

    Raises DivergenceError when every per-action vector diverges (the bound
    is minus infinity everywhere).
    """
    vectors = blind_policy_vectors(model, skip_divergent=skip_divergent)
    if not vectors:
        raise DivergenceError(
            "every blind policy diverges; the blind-policy bound is infinite "
            "for this model"
        )
    belief = np.asarray(belief, dtype=float)
    return max(float(belief @ vector) for vector in vectors.values())
