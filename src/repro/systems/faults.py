"""Fault types (Section 5's fault model).

Three kinds of faults appear in the EMN model: component *crashes*
(detectable by ping monitors), host crashes (every component on the host
goes down), and *zombie* faults — "a component that becomes a 'zombie'
responds to pings sent by component monitors, but does not correctly
perform its functions", so only end-to-end path monitors can see it, and
imprecisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.systems.components import Deployment


class FaultKind(enum.Enum):
    """How a fault manifests and which monitors can see it."""

    #: Component is down and fails pings.
    CRASH = "crash"
    #: Component answers pings but drops the requests routed through it.
    ZOMBIE = "zombie"
    #: The whole host is down; every component on it fails pings.
    HOST_CRASH = "host_crash"


@dataclass(frozen=True)
class Fault:
    """A single activated fault.

    Attributes:
        kind: the fault type.
        target: the component name (CRASH / ZOMBIE) or host name
            (HOST_CRASH) it affects.
    """

    kind: FaultKind
    target: str

    @property
    def label(self) -> str:
        """Stable state-label encoding, e.g. ``"zombie(S1)"``."""
        return f"{self.kind.value}({self.target})"

    def validate(self, deployment: Deployment) -> None:
        """Check the target exists in ``deployment``."""
        if self.kind is FaultKind.HOST_CRASH:
            try:
                deployment.host(self.target)
            except KeyError:
                raise ModelError(f"fault targets unknown host {self.target!r}")
        else:
            try:
                deployment.component(self.target)
            except KeyError:
                raise ModelError(
                    f"fault targets unknown component {self.target!r}"
                )


def unavailable_components(
    fault: Fault | None, deployment: Deployment
) -> frozenset[str]:
    """Components that cannot serve requests while ``fault`` is active.

    A zombie is *unavailable for service* even though it looks alive to
    pings — the distinction between service availability (this function,
    which drives drop rates) and ping liveness (the component monitors in
    :mod:`repro.systems.monitors`) is the heart of the diagnosability
    problem the paper studies.
    """
    if fault is None:
        return frozenset()
    if fault.kind is FaultKind.HOST_CRASH:
        return frozenset(deployment.components_on(fault.target))
    return frozenset({fault.target})


def ping_dead_components(
    fault: Fault | None, deployment: Deployment
) -> frozenset[str]:
    """Components that fail pings while ``fault`` is active.

    Crashes and host crashes kill pings; zombies do not.
    """
    if fault is None or fault.kind is FaultKind.ZOMBIE:
        return frozenset()
    if fault.kind is FaultKind.HOST_CRASH:
        return frozenset(deployment.components_on(fault.target))
    return frozenset({fault.target})
