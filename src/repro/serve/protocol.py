"""Line-delimited JSON protocol between clients and the policy daemon.

One request per line, one response per line, UTF-8.  A request is an
object with an ``"op"`` field plus op-specific arguments; a response is
``{"ok": true, ...}`` on success or ``{"ok": false, "error": code,
"message": ...}`` on failure.  Malformed lines get an error response
rather than a dropped connection, so an interactive ``socat`` session
stays usable.

Ops:

``ping``
    Liveness probe.  → ``{"ok": true, "pong": true}``.
``open``
    Open a session.  Optional ``session`` (client-chosen id),
    ``refine`` (bool; override the engine's online-refinement default —
    ``false`` gives a read-only session), ``belief`` (list of floats).
    → ``{"ok": true, "session": id}``.
``observe``
    ``session``, ``action`` (int), ``observation`` (int): fold a monitor
    output into the session's belief.  → ``{"ok": true}``.
``decide``
    ``session``: one decision.  → ``{"ok": true, "action": int,
    "action_label": str|null, "terminate": bool, "value": float|null,
    "done": bool, "steps": int}``.
``close``
    ``session``: release it.  → ``{"ok": true}``.
``stats``
    Operational snapshot, including a per-session table.
    → ``{"ok": true, "stats": {...}}``.
``metrics``
    Live telemetry snapshot (counters/gauges/timers/histograms).
    → ``{"ok": true, "metrics": {...}}``; with ``"format": "prometheus"``
    → ``{"ok": true, "text": "..."}`` (Prometheus text exposition).
``health``
    Liveness probe (true even while draining).
    → ``{"ok": true, "health": {...}}``.
``ready``
    Readiness probe: model loaded + bound set certified + not draining.
    → ``{"ok": true, "ready": bool, ...}``.
``checkpoint``
    Persist the refined bound set now.  → ``{"ok": true, "path": str|null}``.
``shutdown``
    Ask the daemon to drain and exit (same path as SIGTERM).
    → ``{"ok": true, "draining": true}``.

Error codes: ``bad-request`` (unparseable line, missing/invalid fields,
unknown op), ``serve-error`` (a :class:`~repro.exceptions.ServeError`:
unknown/duplicate session, draining), ``invalid`` (the model rejected the
arguments — e.g. a belief of the wrong dimension), ``internal``
(anything else; the daemon stays up).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.exceptions import ReproError, ServeError

if TYPE_CHECKING:
    from repro.serve.service import PolicyService

__all__ = ["decode_request", "dispatch", "encode_response", "handle_line"]


class BadRequest(ServeError):
    """The request itself is malformed (vs. a valid request the service
    cannot honour, which stays a plain :class:`ServeError`)."""


def decode_request(line: str | bytes) -> dict[str, Any]:
    """Parse one request line; raises :class:`BadRequest` on bad input."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise BadRequest(f"request is not valid JSON: {error}") from None
    if not isinstance(request, dict) or not isinstance(request.get("op"), str):
        raise BadRequest('request must be an object with a string "op" field')
    return request


def encode_response(response: dict[str, Any]) -> bytes:
    """Serialise one response object to a newline-terminated JSON line."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def _require(request: dict[str, Any], key: str) -> Any:
    try:
        return request[key]
    except KeyError:
        raise BadRequest(f'missing required field "{key}"') from None


def dispatch(
    service: PolicyService, request: dict[str, Any], opened: set[str]
) -> dict[str, Any]:
    """Execute one decoded request against ``service``.

    ``opened`` is the calling connection's set of session ids; opens and
    closes keep it current so the connection handler can release leaked
    sessions when the client disconnects.  A ``shutdown`` request is
    answered here but *signalled* by raising nothing — the daemon watches
    for the op before dispatching.
    """
    op = request["op"]
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "open":
        session_id = request.get("session")
        if session_id is not None and not isinstance(session_id, str):
            raise BadRequest('"session" must be a string')
        refine = request.get("refine")
        if refine is not None and not isinstance(refine, bool):
            raise BadRequest('"refine" must be a boolean')
        session_id = service.open_session(
            session_id=session_id,
            refine=refine,
            initial_belief=request.get("belief"),
        )
        opened.add(session_id)
        return {"ok": True, "session": session_id}
    if op == "observe":
        service.observe(
            str(_require(request, "session")),
            int(_require(request, "action")),
            int(_require(request, "observation")),
        )
        return {"ok": True}
    if op == "decide":
        result = service.decide(str(_require(request, "session")))
        return {"ok": True, **result}
    if op == "close":
        session_id = str(_require(request, "session"))
        service.close_session(session_id)
        opened.discard(session_id)
        return {"ok": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "metrics":
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"ok": True, "metrics": service.metrics()}
        if fmt == "prometheus":
            from repro.obs.live import render_prometheus

            return {"ok": True, "text": render_prometheus(service.metrics())}
        raise BadRequest('"format" must be "json" or "prometheus"')
    if op == "health":
        return {"ok": True, "health": service.health()}
    if op == "ready":
        return {"ok": True, **service.ready()}
    if op == "checkpoint":
        return {"ok": True, "path": service.checkpoint()}
    if op == "shutdown":
        return {"ok": True, "draining": True}
    raise BadRequest(f"unknown op {op!r}")


def handle_line(
    service: PolicyService, line: str | bytes, opened: set[str]
) -> dict[str, Any]:
    """Decode, dispatch, and wrap errors into protocol responses."""
    try:
        request = decode_request(line)
        return dispatch(service, request, opened)
    except BadRequest as error:
        return {"ok": False, "error": "bad-request", "message": str(error)}
    except ServeError as error:
        return {"ok": False, "error": "serve-error", "message": str(error)}
    except (ReproError, ValueError, TypeError) as error:
        return {"ok": False, "error": "invalid", "message": str(error)}
    except Exception as error:  # noqa: BLE001 — daemon must survive any request
        return {"ok": False, "error": "internal", "message": str(error)}
