"""Linear-system solvers for Markov reward chains.

The RA-Bound (Eq. 5) reduces to the linear system ``v = r + beta * P v`` for
the uniform-random chain.  Section 3.1 of the paper solves it with
"Gauss-Seidel iterations with successive over-relaxation"; this module
provides that solver plus a Jacobi iteration, a direct sparse solve, and a
sparse backend (``method="sparse"``) that factorises the transient block of
``I - beta P`` in CSR/CSC form with an iterative (LGMRES) fallback — the
path behind Section 4.3's hundreds-of-thousands-of-states claim.  All of
them are verified against each other in the test suite.

Every solver accepts ``P`` as a dense array or a ``scipy.sparse`` matrix;
``method="auto"`` picks the sparse backend or Gauss-Seidel from the chain's
size and density (see :func:`select_method`).
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import DivergenceError, NotConvergedError
from repro.obs.telemetry import active as telemetry_active

#: Value magnitude past which an undiscounted iteration is declared divergent.
DIVERGENCE_THRESHOLD = 1e12

#: ``method="auto"`` heuristics: a chain is routed to the sparse backend
#: when it is already a scipy.sparse matrix, or when it has at least
#: SPARSE_MIN_STATES states and at most SPARSE_DENSITY_CUTOFF of its
#: entries are structurally non-zero.  Below the size floor the dense
#: Gauss-Seidel sweep wins on constant factors; above the density cutoff
#: the CSR factorisation fills in and loses its advantage.
SPARSE_MIN_STATES = 256
SPARSE_DENSITY_CUTOFF = 0.25

#: Sweeps between residual-stagnation checks.  A linearly diverging
#: iteration (constant per-sweep decrement, e.g. a recurrent state accruing
#: cost forever) keeps a constant residual, while any convergent iteration
#: shrinks it; comparing residuals one window apart separates the two long
#: before the magnitude threshold trips.
STAGNATION_WINDOW = 1_000
STAGNATION_RATIO = 0.99


def chain_density(chain) -> float:
    """Fraction of structurally non-zero entries in ``chain``.

    Works on dense arrays and scipy.sparse matrices alike; the density of a
    0x0 chain is defined as 1.0 (nothing to gain from sparsity).
    """
    if not sp.issparse(chain):
        chain = np.asarray(chain)
    n = chain.shape[0]
    if n == 0:
        return 1.0
    if sp.issparse(chain):
        return float(chain.nnz) / float(n * n)
    return float(np.count_nonzero(chain)) / float(n * n)


def select_method(chain) -> str:
    """The ``method="auto"`` policy: ``"sparse"`` or ``"gauss-seidel"``.

    A scipy.sparse chain always takes the sparse backend (densifying it
    would defeat the caller's construction); a dense chain takes it only
    when it is both large (>= :data:`SPARSE_MIN_STATES` states) and sparse
    enough (density <= :data:`SPARSE_DENSITY_CUTOFF`).
    """
    if sp.issparse(chain):
        return "sparse"
    chain = np.asarray(chain)
    if (
        chain.shape[0] >= SPARSE_MIN_STATES
        and chain_density(chain) <= SPARSE_DENSITY_CUTOFF
    ):
        return "sparse"
    return "gauss-seidel"


def _check_stagnation(
    residual: float, checkpoint: float, values_growing: bool, context: str
) -> None:
    if values_growing and residual > 0 and residual >= STAGNATION_RATIO * checkpoint:
        raise DivergenceError(
            f"{context}: residual stalled at {residual:.3g} over "
            f"{STAGNATION_WINDOW} sweeps while values keep growing — the "
            "iteration diverges linearly (a recurrent state accrues reward; "
            "see Section 3.1 conditions)"
        )


def gauss_seidel(
    chain: np.ndarray | sp.spmatrix,
    reward: np.ndarray,
    discount: float = 1.0,
    omega: float = 1.0,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Solve ``v = r + discount * P v`` by Gauss-Seidel with SOR.

    Args:
        chain: row-stochastic transition matrix ``P`` of shape ``(n, n)``.
        reward: expected single-step reward vector ``r`` of shape ``(n,)``.
        discount: the factor ``beta``; 1.0 for the paper's undiscounted
            criterion.
        omega: SOR relaxation factor in ``(0, 2)``; 1.0 is plain
            Gauss-Seidel, values above 1 over-relax ("successive
            over-relaxation", as used by the paper's implementation).
        tol: sup-norm change below which the iteration stops.
        max_iterations: iteration budget.

    Raises:
        DivergenceError: if iterates blow past :data:`DIVERGENCE_THRESHOLD`
            (the chain accumulates unbounded reward, e.g. a recurrent state
            with non-zero reward in an undiscounted model).
        NotConvergedError: if the budget is exhausted first.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    # The per-state sweep needs random row access; densify sparse input
    # (callers with genuinely large sparse chains should use "sparse").
    chain = (
        chain.toarray() if sp.issparse(chain) else np.asarray(chain, dtype=float)
    )
    reward = np.asarray(reward, dtype=float)
    n = reward.shape[0]
    value = np.zeros(n)
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(max_iterations):
        delta = 0.0
        for s in range(n):
            # The self-loop term is moved to the left-hand side so states
            # with high self-transition probability converge in one sweep.
            row = chain[s]
            diagonal = discount * row[s]
            others = discount * (row @ value) - diagonal * value[s]
            if diagonal >= 1.0:
                # Absorbing state with discount 1: value is determined by its
                # own reward stream; finite only when the reward is zero.
                if abs(reward[s]) > 0.0:
                    raise DivergenceError(
                        f"state {s} is absorbing with non-zero reward "
                        f"{reward[s]:.3g}; undiscounted value is infinite"
                    )
                updated = 0.0
            else:
                updated = (reward[s] + others) / (1.0 - diagonal)
            updated = value[s] + omega * (updated - value[s])
            delta = max(delta, abs(updated - value[s]))
            value[s] = updated
        if not np.all(np.isfinite(value)) or np.max(np.abs(value)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError(
                "Gauss-Seidel iterates diverged; the chain has recurrent "
                "reward-accruing states (see Section 3.1 conditions)"
            )
        if delta < tol:
            return value
        if (iteration + 1) % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                delta, checkpoint_residual, norm > checkpoint_norm, "Gauss-Seidel"
            )
            checkpoint_residual = delta
            checkpoint_norm = norm
    raise NotConvergedError(
        f"Gauss-Seidel did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=delta,
    )


def jacobi(
    chain: np.ndarray | sp.spmatrix,
    reward: np.ndarray,
    discount: float = 1.0,
    tol: float = 1e-10,
    max_iterations: int = 200_000,
) -> np.ndarray:
    """Solve ``v = r + discount * P v`` by Jacobi (simultaneous) iteration.

    Kept as an independently-implemented cross-check for
    :func:`gauss_seidel`; the test suite asserts the two agree.  Sparse
    chains are used as-is (the update is a single mat-vec per sweep).
    """
    if not sp.issparse(chain):
        chain = np.asarray(chain, dtype=float)
    reward = np.asarray(reward, dtype=float)
    value = np.zeros_like(reward)
    checkpoint_residual = np.inf
    checkpoint_norm = 0.0
    for iteration in range(max_iterations):
        updated = reward + discount * (chain @ value)
        if not np.all(np.isfinite(updated)) or np.max(np.abs(updated)) > DIVERGENCE_THRESHOLD:
            raise DivergenceError("Jacobi iterates diverged")
        residual = float(np.max(np.abs(updated - value)))
        if residual < tol:
            return updated
        value = updated
        if (iteration + 1) % STAGNATION_WINDOW == 0:
            norm = float(np.max(np.abs(value)))
            _check_stagnation(
                residual, checkpoint_residual, norm > checkpoint_norm, "Jacobi"
            )
            checkpoint_residual = residual
            checkpoint_norm = norm
    raise NotConvergedError(
        f"Jacobi did not reach tol={tol} in {max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
    )


def solve_direct(
    chain: np.ndarray | sp.spmatrix,
    reward: np.ndarray,
    discount: float = 1.0,
    transient_states: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``(I - discount * P) v = r`` with a direct sparse factorisation.

    For an undiscounted chain, ``I - P`` is singular whenever the chain has a
    recurrent class, so the caller must restrict the solve to the transient
    states (whose sub-matrix is non-singular) and pin recurrent states to
    zero — exactly the structure the paper's model modifications guarantee
    (recurrent states are zero-reward absorbing states).  Pass
    ``transient_states`` as a boolean mask to do that; with ``None`` the full
    system is solved (valid for ``discount < 1``).
    """
    matrix, rhs, mask = _transient_system(
        chain, reward, discount, transient_states
    )
    value = np.zeros(np.asarray(reward).shape[0])
    if matrix is not None:
        value[mask] = spla.spsolve(matrix, rhs)
    return value


def _transient_system(
    chain,
    reward,
    discount: float,
    transient_states: np.ndarray | None,
) -> tuple[sp.csc_matrix | None, np.ndarray, np.ndarray]:
    """Build ``(I - discount * P)`` restricted to the transient block.

    Returns ``(matrix, rhs, mask)`` in CSC form ready for a factorisation;
    ``matrix`` is None when the mask selects no states (nothing to solve).
    Accepts dense or scipy.sparse ``chain``.
    """
    reward = np.asarray(reward, dtype=float)
    n = reward.shape[0]
    sparse_chain = sp.csr_matrix(chain) if not sp.issparse(chain) else chain.tocsr()
    mask = (
        np.ones(n, dtype=bool)
        if transient_states is None
        else np.asarray(transient_states, dtype=bool)
    )
    if not mask.any():
        return None, reward[mask], mask
    indices = np.flatnonzero(mask)
    block = sparse_chain[indices][:, indices]
    matrix = (
        sp.eye(indices.size, format="csc") - discount * block.tocsc()
    )
    return matrix, reward[indices], mask


def solve_sparse(
    chain,
    reward: np.ndarray,
    discount: float = 1.0,
    transient_states: np.ndarray | None = None,
    tol: float = 1e-10,
    maxiter: int = 10_000,
) -> np.ndarray:
    """The sparse backend: CSR/CSC factorisation with an iterative fallback.

    Solves ``(I - discount * P) v = r`` on the transient block (recurrent
    states pinned to zero, as in :func:`solve_direct`) via
    :func:`scipy.sparse.linalg.spsolve`.  If the factorisation reports a
    singular/ill-conditioned matrix or produces non-finite values, the
    solve is retried with LGMRES; an iterative failure raises
    :class:`~repro.exceptions.NotConvergedError` rather than returning a
    silently wrong vector.

    Accepts ``chain`` as a dense array or any scipy.sparse matrix; the
    caller that builds its chain sparsely (e.g.
    :func:`repro.systems.tiered.tiered_ra_chain`) never materialises a
    dense ``n x n`` array anywhere on this path.
    """
    matrix, rhs, mask = _transient_system(
        chain, reward, discount, transient_states
    )
    value = np.zeros(np.asarray(reward).shape[0])
    if matrix is None:
        return value
    solution = None
    with warnings.catch_warnings():
        warnings.simplefilter("error", spla.MatrixRankWarning)
        try:
            candidate = spla.spsolve(matrix, rhs)
            if np.all(np.isfinite(candidate)):
                solution = candidate
        except (RuntimeError, spla.MatrixRankWarning):
            solution = None
    if solution is None:
        solution, info = spla.lgmres(
            matrix, rhs, rtol=tol, atol=tol, maxiter=maxiter
        )
        if info != 0 or not np.all(np.isfinite(solution)):
            raise NotConvergedError(
                "sparse RA-Bound solve failed: the direct factorisation was "
                "singular and LGMRES did not converge "
                f"(info={info}); is the transient mask correct?",
                iterations=maxiter,
                residual=float(
                    np.max(np.abs(matrix @ solution - rhs))
                    if np.all(np.isfinite(solution))
                    else np.inf
                ),
            )
    value[mask] = solution
    return value


def solve_markov_reward(
    chain: np.ndarray | sp.spmatrix,
    reward: np.ndarray,
    discount: float = 1.0,
    method: str = "gauss-seidel",
    omega: float = 1.05,
    tol: float = 1e-10,
    transient_states: np.ndarray | None = None,
) -> np.ndarray:
    """Front door for expected-accumulated-reward solves.

    ``method`` selects between ``"gauss-seidel"`` (the paper's choice, with
    mild over-relaxation by default), ``"jacobi"``, ``"direct"``,
    ``"sparse"`` (factorise the transient block of ``I - beta P`` with an
    LGMRES fallback), and ``"auto"`` (:func:`select_method`'s size/density
    heuristic between the sparse backend and Gauss-Seidel).
    """
    requested = method
    if method == "auto":
        method = select_method(chain)
    solvers = {
        "gauss-seidel": lambda: gauss_seidel(
            chain, reward, discount=discount, omega=omega, tol=tol
        ),
        "jacobi": lambda: jacobi(chain, reward, discount=discount, tol=tol),
        "direct": lambda: solve_direct(
            chain, reward, discount=discount, transient_states=transient_states
        ),
        "sparse": lambda: solve_sparse(
            chain,
            reward,
            discount=discount,
            transient_states=transient_states,
            tol=tol,
        ),
    }
    if method not in solvers:
        raise ValueError(f"unknown method {method!r}")
    telemetry = telemetry_active()
    if telemetry is None:
        return solvers[method]()
    telemetry.count(f"solver.dispatch.{method}")
    with (
        telemetry.trace_span(
            "solver.solve",
            category="solver",
            method=method,
            n_states=int(np.asarray(reward).shape[0]),
        ),
        telemetry.span("solver.solve"),
    ):
        started = time.perf_counter()  # codelint: ignore[R903]
        value = solvers[method]()
    telemetry.event(
        "solver_dispatch",
        requested=requested,
        method=method,
        n_states=int(np.asarray(reward).shape[0]),
        seconds=round(time.perf_counter() - started, 6),  # codelint: ignore[R903]
    )
    return value
