"""Exporters for hierarchical trace spans.

Spans are recorded by :meth:`repro.obs.telemetry.Telemetry.trace_span`
(``trace=True`` registries) and serialised into the JSONL stream as
``span`` events just before the ``summary``.  This module turns them into
formats external tools read:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON (the "JSON Array Format" with complete ``"X"``
  events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
* :func:`to_collapsed_stacks` — Brendan Gregg's collapsed-stack format
  (``root;child;leaf weight`` lines, weights in self-time microseconds),
  the input ``flamegraph.pl`` and speedscope accept.
* :func:`span_tree` — a canonical nested representation used by the
  determinism tests: serial and sharded runs of the same campaign must
  produce the *same tree* once wall-clock fields are stripped.

Spans can come straight off a live registry (:attr:`Telemetry.spans`) or
be read back from a run file with :func:`read_spans`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.telemetry import SpanRecord

__all__ = [
    "read_spans",
    "span_tree",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "write_chrome_trace",
]


def read_spans(path: str | Path) -> list[SpanRecord]:
    """Reconstruct :class:`SpanRecord` objects from a JSONL run file.

    Lines that are not ``span`` events are skipped, so this reads the
    same stream ``python -m repro.obs report`` does.
    """
    spans: list[SpanRecord] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            if not line.strip():
                continue
            record = json.loads(line)
            if not isinstance(record, dict) or record.get("event") != "span":
                continue
            args = record.get("args") or {}
            spans.append(
                SpanRecord(
                    span_id=int(record["span_id"]),
                    parent_id=(
                        None
                        if record.get("parent_id") is None
                        else int(record["parent_id"])
                    ),
                    name=str(record["name"]),
                    category=str(record.get("category", "repro")),
                    t_start=float(record["t_start"]),
                    seconds=float(record["seconds"]),
                    args=tuple(sorted(args.items())),
                )
            )
    return spans


def to_chrome_trace(spans: list[SpanRecord] | tuple[SpanRecord, ...]) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` JSON object.

    Each span becomes one complete (``"ph": "X"``) event with start and
    duration in microseconds.  Everything is reported on one pid/tid —
    the merged timeline is already sequential (chunk spans are rebased
    end-to-end at absorb time), and a single track is what makes the
    serial and sharded traces of the same campaign line up in Perfetto.
    """
    events: list[dict[str, Any]] = []
    for span in spans:
        args = dict(span.args)
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["span_id"] = span.span_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.t_start * 1e6, 3),
                "dur": round(span.seconds * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], -event["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.trace"},
    }


def write_chrome_trace(
    path: str | Path, spans: list[SpanRecord] | tuple[SpanRecord, ...]
) -> None:
    """Write :func:`to_chrome_trace` output as a JSON file."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(to_chrome_trace(spans), stream)
        stream.write("\n")


def to_collapsed_stacks(
    spans: list[SpanRecord] | tuple[SpanRecord, ...],
) -> list[str]:
    """Spans as collapsed-stack lines (``a;b;c weight``).

    The weight of a stack is *self time* in integer microseconds — the
    span's duration minus the duration of its direct children — matching
    how sampling profilers attribute cost, so flame widths sum correctly
    up the stack.  Identical stacks are merged.  Spans whose parent is
    missing from the input (dropped by the ring buffer) are treated as
    roots.
    """
    by_id = {span.span_id: span for span in spans}
    child_seconds: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            child_seconds[span.parent_id] = (
                child_seconds.get(span.parent_id, 0.0) + span.seconds
            )

    def stack_of(span: SpanRecord) -> str:
        names = [span.name]
        seen = {span.span_id}
        parent_id = span.parent_id
        while parent_id is not None and parent_id in by_id and parent_id not in seen:
            seen.add(parent_id)
            parent = by_id[parent_id]
            names.append(parent.name)
            parent_id = parent.parent_id
        return ";".join(reversed(names))

    weights: dict[str, int] = {}
    for span in spans:
        self_seconds = max(0.0, span.seconds - child_seconds.get(span.span_id, 0.0))
        micros = int(round(self_seconds * 1e6))
        if micros <= 0:
            continue
        stack = stack_of(span)
        weights[stack] = weights.get(stack, 0) + micros
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def span_tree(
    spans: list[SpanRecord] | tuple[SpanRecord, ...],
    with_args: bool = True,
    by_session: bool = False,
) -> list[dict[str, Any]] | dict[Any, list[dict[str, Any]]]:
    """The spans as a canonical nested tree, wall-clock fields stripped.

    Children appear in span-id (allocation) order, which is start order
    within one registry and chunk order across absorbed registries — the
    deterministic order.  The result contains only ``name``, ``args``
    (optional), and ``children``, so two runs of the same seeded campaign
    compare equal with ``==`` regardless of worker count or timing.

    With ``by_session=True`` the result is instead a dict mapping each
    session label to that session's forest.  A span's session is its own
    ``session`` arg or, failing that, the nearest ancestor's (spans with
    no labelled ancestor group under ``None``).  Concurrent sessions
    multiplexed onto one registry — the policy service's — interleave
    their spans in allocation order, so the flat tree braids them
    together; grouping restores one readable flamegraph per session.  A
    span opened under a *differently*-labelled parent roots its own
    session's forest rather than nesting across the boundary.
    """
    children: dict[int | None, list[SpanRecord]] = {}
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for group in children.values():
        group.sort(key=lambda span: span.span_id)

    def build(span: SpanRecord) -> dict[str, Any]:
        node: dict[str, Any] = {"name": span.name}
        if with_args:
            node["args"] = dict(span.args)
        node["children"] = [
            build(child) for child in children.get(span.span_id, [])
        ]
        return node

    if not by_session:
        return [build(span) for span in children.get(None, [])]

    session_of: dict[int, Any] = {}

    def resolve(span: SpanRecord) -> Any:
        if span.span_id in session_of:
            return session_of[span.span_id]
        label = dict(span.args).get("session")
        if label is None and span.parent_id is not None and span.parent_id in by_id:
            label = resolve(by_id[span.parent_id])
        session_of[span.span_id] = label
        return label

    def build_session(span: SpanRecord, label: Any) -> dict[str, Any]:
        node: dict[str, Any] = {"name": span.name}
        if with_args:
            node["args"] = dict(span.args)
        node["children"] = [
            build_session(child, label)
            for child in children.get(span.span_id, [])
            if resolve(child) == label
        ]
        return node

    forests: dict[Any, list[dict[str, Any]]] = {}
    for span in sorted(spans, key=lambda span: span.span_id):
        label = resolve(span)
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or resolve(parent) != label:
            forests.setdefault(label, []).append(build_session(span, label))
    return forests
