"""Recovery controllers (Sections 4 and 5).

* :mod:`repro.controllers.bounded` — the paper's controller: finite-depth
  lookahead with the piecewise-linear lower bound at the leaves, online
  refinement, and termination through the terminate action ``a_T``.
* :mod:`repro.controllers.heuristic` — the SRDS'05 heuristic controller used
  as the main baseline (heuristic leaf value, probability-threshold
  termination).
* :mod:`repro.controllers.most_likely` — Bayes diagnosis plus the cheapest
  action that fixes the most likely fault.
* :mod:`repro.controllers.oracle` — the unattainable ideal: knows the fault,
  fixes it in one action.
* :mod:`repro.controllers.random_controller` — uniform random recovery
  actions; the policy whose value *is* the RA-Bound, kept as a sanity
  baseline.
* :mod:`repro.controllers.bootstrap` — the offline bounds-improvement phase
  of Section 4.1 (Random and Average variants) that produces the data for
  Figures 5(a) and 5(b).
"""

from repro.controllers.base import Decision, RecoveryController
from repro.controllers.bootstrap import BootstrapResult, bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.controllers.branch_and_bound import BranchAndBoundController
from repro.controllers.heuristic import HeuristicController, HeuristicLeaf
from repro.controllers.most_likely import MostLikelyController
from repro.controllers.oracle import OracleController
from repro.controllers.qmdp import QMDPController
from repro.controllers.random_controller import RandomController

__all__ = [
    "BootstrapResult",
    "BoundedController",
    "BranchAndBoundController",
    "Decision",
    "HeuristicController",
    "HeuristicLeaf",
    "MostLikelyController",
    "OracleController",
    "QMDPController",
    "RandomController",
    "RecoveryController",
    "bootstrap_bounds",
]
