"""Alpha-vector (bounding-hyperplane) utilities.

Both the exact solver (Monahan enumeration) and the incremental lower-bound
sets of Section 4.1 represent piecewise-linear value functions as finite sets
of vectors: the value at belief ``pi`` is ``max_alpha pi . alpha``.  This
module provides evaluation and the two standard pruning operators
(pointwise dominance and exact LP dominance).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

#: Slack below which a vector is considered dominated in the LP test.
LP_EPSILON = 1e-9


def evaluate(vectors: np.ndarray, belief: np.ndarray) -> float:
    """``max_alpha pi . alpha`` for a ``(k, |S|)`` stack of vectors."""
    return float(np.max(vectors @ belief))


def evaluate_batch(vectors: np.ndarray, beliefs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`evaluate` over a ``(m, |S|)`` stack of beliefs."""
    return np.max(vectors @ beliefs.T, axis=0)


def argmax_vector(vectors: np.ndarray, belief: np.ndarray) -> int:
    """Index of the maximising vector at ``belief``."""
    return int(np.argmax(vectors @ belief))


def pointwise_dominated(candidate: np.ndarray, vectors: np.ndarray) -> bool:
    """True if some vector in ``vectors`` is ``>= candidate`` everywhere.

    Pointwise dominance is sufficient but not necessary for uselessness;
    it is the cheap filter applied before the exact LP test.
    """
    if vectors.size == 0:
        return False
    return bool(np.any(np.all(vectors >= candidate - LP_EPSILON, axis=1)))


def prune_pointwise(vectors: np.ndarray) -> np.ndarray:
    """Drop vectors pointwise-dominated by another vector in the set.

    A vector is dropped when some other vector is at least as good
    everywhere and either strictly better somewhere or an earlier duplicate
    (so exactly one copy of each tie survives).
    """
    keep = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i == j:
                continue
            if np.all(other >= candidate - LP_EPSILON) and (
                bool(np.any(other > candidate + LP_EPSILON)) or j < i
            ):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return vectors[keep]


def witness_belief(
    candidate: np.ndarray, vectors: np.ndarray
) -> np.ndarray | None:
    """A belief where ``candidate`` strictly beats every vector in ``vectors``.

    Solves the standard witness LP: maximise ``delta`` subject to
    ``pi . candidate >= pi . v + delta`` for every ``v``, ``pi`` in the
    probability simplex.  Returns the witness belief, or ``None`` when
    ``candidate`` is (weakly) dominated everywhere.
    """
    if vectors.size == 0:
        return np.full(candidate.shape[0], 1.0 / candidate.shape[0])
    n = candidate.shape[0]
    # Decision variables: [pi_1 .. pi_n, delta]; maximise delta.
    objective = np.zeros(n + 1)
    objective[-1] = -1.0
    inequality = np.hstack([vectors - candidate, np.ones((vectors.shape[0], 1))])
    inequality_rhs = np.zeros(vectors.shape[0])
    equality = np.hstack([np.ones((1, n)), np.zeros((1, 1))])
    equality_rhs = np.array([1.0])
    bounds = [(0.0, 1.0)] * n + [(None, None)]
    result = linprog(
        objective,
        A_ub=inequality,
        b_ub=inequality_rhs,
        A_eq=equality,
        b_eq=equality_rhs,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - solver failure is exceptional
        return None
    delta = -result.fun
    if delta <= LP_EPSILON:
        return None
    return result.x[:n]


def prune_lp(vectors: np.ndarray) -> np.ndarray:
    """Exact (Lark-style) pruning: keep only vectors useful at some belief.

    After the cheap pointwise filter (which also dedups ties), a vector
    survives iff the witness LP finds a belief where it strictly beats all
    remaining rivals.
    """
    vectors = prune_pointwise(vectors)
    keep = []
    for i in range(vectors.shape[0]):
        rivals = np.delete(vectors, i, axis=0)
        if rivals.size == 0 or witness_belief(vectors[i], rivals) is not None:
            keep.append(i)
    if not keep:
        # Degenerate numerical case: keep one representative.
        keep.append(0)
    return vectors[keep]


def cross_sum(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """All pairwise sums of two vector stacks (the Monahan cross-sum)."""
    if left.size == 0:
        return right
    if right.size == 0:
        return left
    return (left[:, None, :] + right[None, :, :]).reshape(
        -1, left.shape[1]
    )
