"""Minimal ASCII table renderer for experiment reports.

The experiment harnesses print paper-style tables (Table 1, the Figure 5
series) to stdout; this keeps them dependency-free and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.4g}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
