"""Sparse online-decision smoke with a peak-RSS ceiling.

Builds a tiered model large enough that densifying even a single action's
transition matrix would blow the memory ceiling (12,002 states -> one dense
``(|S|, |S|)`` matrix is ~1.15 GB), runs the bounded controller through a
uniform-belief decision and a short episode on the sparse backend, and
asserts that peak RSS stayed under the ceiling.  Timing is deliberately not
asserted — CI runners are too noisy — but an accidental densification
anywhere on the decision path is a deterministic, order-of-magnitude RSS
regression that this smoke catches.

The smoke also exercises the shared-memory model handoff
(:mod:`repro.linalg.shm`): the sparse containers are exported into an
arena, rebuilt from the handle payload, and verified to reference the
same buffers.  The arena's segment bytes are *added* to the RSS ceiling
(mapped shared pages count toward RSS while attached) and the run fails
if any ``/dev/shm`` segment survives the export — a leaked segment would
outlive the process and silently eat host memory.

Usage::

    python -m benchmarks.online_smoke
    python -m benchmarks.online_smoke --replicas 2000 --max-rss-mb 1024
"""

from __future__ import annotations

import argparse
import gc
import pickle
import resource
import time

import numpy as np

from repro.controllers.bounded import BoundedController
from repro.linalg import shm
from repro.pomdp.belief import uniform_belief
from repro.sim.environment import RecoveryEnvironment
from repro.systems.tiered import build_tiered_system

#: Replicas per tier: 3 tiers -> 2 + 2 * 3 * 2000 = 12,002 states.
DEFAULT_REPLICAS = 2_000

#: Peak-RSS ceiling.  The whole sparse run needs well under 300 MB; one
#: densified 12,002^2 matrix alone is ~1.15 GB, so the ceiling separates
#: the two regimes with a wide margin on both sides.
DEFAULT_MAX_RSS_MB = 1_024


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB (Linux ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_smoke(replicas_per_tier: int) -> dict:
    """Build sparse, decide from uniform and narrowed beliefs, run an episode."""
    started = time.perf_counter()
    system = build_tiered_system(
        replicas=(replicas_per_tier,) * 3, backend="sparse"
    )
    model = system.model
    build_seconds = time.perf_counter() - started
    assert model.pomdp.backend.is_sparse, "tiered build did not select sparse"

    controller = BoundedController(
        model, depth=1, refine_online=False, preflight=True
    )
    assert controller.preflight_report is not None
    assert not any(
        d.code == "R203" for d in controller.preflight_report.findings
    ), "sparse preflight must run every pass without size skips"
    belief = uniform_belief(model.pomdp, support=model.fault_states)
    controller.reset(initial_belief=belief)
    started = time.perf_counter()
    decision = controller.decide()
    uniform_seconds = time.perf_counter() - started
    assert decision.is_terminate, (
        "uniform-belief decision should escalate to the operator "
        f"(one faulty replica in {replicas_per_tier} costs less than a "
        f"restart), got action {decision.action}"
    )

    environment = RecoveryEnvironment(model, seed=2006)
    fault_indices = np.flatnonzero(model.fault_states)
    environment.inject(int(fault_indices[0]))
    suspects = np.zeros(model.pomdp.n_states, dtype=bool)
    suspects[fault_indices[:6]] = True
    controller.reset(initial_belief=uniform_belief(model.pomdp, support=suspects))
    passive = int(np.flatnonzero(model.passive_actions)[0])
    controller.observe(passive, environment.initial_observation())
    steps = 0
    for _ in range(8):
        step = controller.decide()
        result = environment.execute(step.action)
        steps += 1
        if step.is_terminate:
            break
        controller.observe(step.action, result.observation)

    shm_bytes = exercise_shm_handoff(model.pomdp)
    return {
        "n_states": model.pomdp.n_states,
        "n_actions": model.pomdp.n_actions,
        "build_seconds": build_seconds,
        "uniform_decision_seconds": uniform_seconds,
        "episode_steps": steps,
        "episode_cost": environment.cost,
        "shm_bytes": shm_bytes,
    }


def exercise_shm_handoff(pomdp) -> int:
    """Export the sparse model into shared memory and rebuild it.

    Returns the arena's segment bytes (they count toward RSS while
    attached) and raises if any segment leaks past the export.
    """
    arena = shm.SharedArena()
    try:
        with shm.exporting(arena):
            payload = pickle.dumps(
                (pomdp.transitions, pomdp.observations, pomdp.rewards)
            )
        shm_bytes = arena.total_bytes
        assert shm_bytes > 0, "sparse export produced no shared segments"
        assert len(payload) < shm_bytes, (
            "handle payload should be far smaller than the model buffers"
        )
        transitions, _, _ = pickle.loads(payload)
        assert transitions.base.nnz == pomdp.transitions.base.nnz
        del transitions
    finally:
        gc.collect()
        shm.detach_all()
        arena.close()
    leaked = shm.leaked_segments()
    assert not leaked, f"leaked /dev/shm segments: {leaked}"
    return shm_bytes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="online-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS, metavar="R",
        help="replicas per tier (3 tiers; default 2000 -> 12,002 states)",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=DEFAULT_MAX_RSS_MB, metavar="MB",
        help="peak-RSS ceiling; exceeding it means something densified",
    )
    args = parser.parse_args(argv)

    report = run_smoke(args.replicas)
    rss = peak_rss_mb()
    shm_mb = report["shm_bytes"] / (1024.0 * 1024.0)
    ceiling = args.max_rss_mb + shm_mb
    print(
        f"sparse online smoke: |S|={report['n_states']:,} "
        f"|A|={report['n_actions']:,}, build {report['build_seconds']:.1f}s, "
        f"uniform decision {report['uniform_decision_seconds']:.1f}s, "
        f"episode {report['episode_steps']} decisions "
        f"(cost {report['episode_cost']:.3f}), peak RSS {rss:.0f} MB "
        f"(+{shm_mb:.0f} MB shm exported and released)"
    )
    if rss > ceiling:
        raise SystemExit(
            f"peak RSS {rss:.0f} MB exceeded the {ceiling:.0f} MB ceiling "
            f"({args.max_rss_mb:.0f} MB + {shm_mb:.0f} MB shm) — a "
            "decision-path operation is densifying the model"
        )
    print(
        f"peak RSS within the {ceiling:.0f} MB ceiling "
        f"({args.max_rss_mb:.0f} MB + {shm_mb:.0f} MB shm), "
        "no leaked shared-memory segments"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
