"""Bound-convergence analytics: phase split, rebasing, gap series."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bounds.incremental import refine_at
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.obs import session
from repro.obs.convergence import (
    format_report,
    gap_series,
    read_refinements,
    save_png,
)


def _write_stream(path, events):
    path.write_text(
        "\n".join(json.dumps(event) for event in events) + "\n",
        encoding="utf-8",
    )


def _refine(seq, *, t, improvement, chunk=None, **extra):
    record = {
        "event": "refine",
        "seq": seq,
        "action": 1,
        "added": True,
        "improvement": improvement,
        "set_size": seq + 1,
        "t": t,
        "value": 10.0 + seq,
        "dominated": 0,
        "evicted": 0,
    }
    if chunk is not None:
        record["chunk"] = chunk
    record.update(extra)
    return record


class TestPhaseInference:
    def test_refine_outside_episode_is_bootstrap(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(path, [_refine(0, t=0.1, improvement=2.0)])
        (record,) = read_refinements(path)
        assert record.phase == "bootstrap"

    def test_refine_inside_episode_is_online(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                {"event": "episode_start", "seq": 0, "episode": 0,
                 "fault_state": 1},
                _refine(1, t=0.1, improvement=2.0),
                {"event": "episode_end", "seq": 2, "episode": 0,
                 "recovered": True, "terminated": True, "steps": 1,
                 "cost": 1.0},
            ],
        )
        (record,) = read_refinements(path)
        assert record.phase == "online"

    def test_chunk_tagged_refine_is_online(self, tmp_path):
        # Chunk-buffered events lose their episode markers' interleaving
        # guarantees; the chunk tag alone marks them online.
        path = tmp_path / "run.jsonl"
        _write_stream(path, [_refine(0, t=0.1, improvement=2.0, chunk=0)])
        (record,) = read_refinements(path)
        assert record.phase == "online"
        assert record.chunk == 0

    def test_indices_count_per_phase(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(0, t=0.1, improvement=1.0),
                _refine(1, t=0.2, improvement=1.0),
                _refine(2, t=0.1, improvement=1.0, chunk=0),
            ],
        )
        records = read_refinements(path)
        assert [(r.phase, r.index) for r in records] == [
            ("bootstrap", 0),
            ("bootstrap", 1),
            ("online", 0),
        ]


class TestWallClockRebase:
    def test_chunk_clocks_are_rebased_end_to_end(self, tmp_path):
        # Two chunks, each with a clock starting near zero: the merged
        # series must be monotone, chunk 1 landing after chunk 0's extent.
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(0, t=5.0, improvement=1.0, chunk=0),
                _refine(1, t=5.4, improvement=1.0, chunk=0),
                _refine(2, t=5.1, improvement=1.0, chunk=1),
            ],
        )
        times = [record.t for record in read_refinements(path)]
        assert times == sorted(times)
        assert times[0] == pytest.approx(0.0)
        assert times[1] == pytest.approx(0.4)
        assert times[2] == pytest.approx(0.4)  # chunk 1 starts at 0.4 extent

    def test_v1_stream_without_extras_still_reads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                {"event": "refine", "seq": 0, "action": 2, "added": True,
                 "improvement": 1.5, "set_size": 4},
            ],
        )
        (record,) = read_refinements(path)
        assert record.t == 0.0
        assert record.value == 0.0
        assert record.improvement == 1.5


class TestGapSeries:
    def test_gap_falls_to_zero(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(0, t=0.1, improvement=4.0),
                _refine(1, t=0.2, improvement=2.0),
                _refine(2, t=0.3, improvement=1.0),
            ],
        )
        series = gap_series(read_refinements(path), "bootstrap")
        gaps = [gap for _, _, gap in series]
        assert gaps == pytest.approx([3.0, 1.0, 0.0])
        cumulative = [c for _, c, _ in series]
        assert cumulative == pytest.approx([4.0, 6.0, 7.0])

    def test_phases_get_independent_totals(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(0, t=0.1, improvement=4.0),
                _refine(1, t=0.1, improvement=6.0, chunk=0),
            ],
        )
        records = read_refinements(path)
        (_, _, bootstrap_gap) = gap_series(records, "bootstrap")[-1]
        (_, _, online_gap) = gap_series(records, "online")[-1]
        assert bootstrap_gap == 0.0
        assert online_gap == 0.0


class TestReport:
    def test_empty_records_render_placeholder(self):
        assert format_report([]) == "no refine events in stream\n"

    def test_report_has_phase_sections(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(0, t=0.1, improvement=4.0),
                _refine(1, t=0.1, improvement=6.0, chunk=0),
            ],
        )
        report = format_report(read_refinements(path))
        assert "bootstrap refinements" in report
        assert "online refinements" in report
        assert "gap" in report

    def test_long_series_is_sampled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_stream(
            path,
            [
                _refine(i, t=0.01 * i, improvement=1.0) for i in range(100)
            ],
        )
        report = format_report(read_refinements(path))
        assert "n=100" in report
        assert "sampled to 20 rows" in report

    def test_png_degrades_without_matplotlib(self, tmp_path):
        # The container may or may not ship matplotlib; either way the
        # call must not raise, and False means "no file written".
        path = tmp_path / "run.jsonl"
        _write_stream(path, [_refine(0, t=0.1, improvement=1.0)])
        records = read_refinements(path)
        png = tmp_path / "gap.png"
        wrote = save_png(records, png)
        assert wrote == png.exists()


class TestLiveInstrumentation:
    """refine events recorded by the real bound machinery carry the
    convergence extras (value, t, dominated, evicted)."""

    def test_refine_at_emits_convergence_fields(self, tmp_path, simple_system):
        pomdp = simple_system.model.pomdp
        path = tmp_path / "run.jsonl"
        with session(path):
            bound_set = BoundVectorSet(ra_bound_vector(pomdp))
            belief = simple_system.model.initial_belief()
            refine_at(pomdp, bound_set, belief)
            refine_at(pomdp, bound_set, belief)
        refines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("event") == "refine"
        ]
        assert refines
        for record in refines:
            assert {"value", "t", "dominated", "evicted"} <= set(record)
            assert record["t"] >= 0.0

    def test_live_stream_feeds_read_refinements(self, tmp_path, simple_system):
        pomdp = simple_system.model.pomdp
        path = tmp_path / "run.jsonl"
        with session(path):
            bound_set = BoundVectorSet(ra_bound_vector(pomdp))
            refine_at(pomdp, bound_set, simple_system.model.initial_belief())
        records = read_refinements(path)
        assert records
        assert all(record.phase == "bootstrap" for record in records)
        assert all(record.set_size > 0 for record in records)
