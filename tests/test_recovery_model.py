"""Tests for the recovery-model layer (conditions, Figure 2 transforms)."""

import numpy as np
import pytest

from repro.exceptions import ConditionViolation, ModelError
from repro.pomdp.model import POMDP
from repro.recovery.model import (
    RecoveryModel,
    check_condition_1,
    check_condition_2,
    make_null_absorbing,
    termination_rewards,
    with_termination_action,
)


def raw_pomdp() -> POMDP:
    """Unaugmented two-state fault/null model with one repair + observe."""
    transitions = np.array(
        [
            [[0.0, 1.0], [0.0, 1.0]],  # repair
            [[1.0, 0.0], [0.0, 1.0]],  # observe
        ]
    )
    observations = np.array(
        [
            [[0.7, 0.3], [0.0, 1.0]],
            [[0.7, 0.3], [0.0, 1.0]],
        ]
    )
    rewards = np.array([[-0.5, -0.1], [-0.2, 0.0]])
    return POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=("fault", "null"),
        action_labels=("repair", "observe"),
        observation_labels=("alarm", "clear"),
    )


NULL_MASK = np.array([False, True])
RATES = np.array([-0.5, 0.0])


class TestCondition1:
    def test_passes_when_recoverable(self):
        check_condition_1(raw_pomdp(), NULL_MASK)

    def test_empty_null_set_rejected(self):
        with pytest.raises(ConditionViolation) as excinfo:
            check_condition_1(raw_pomdp(), np.array([False, False]))
        assert excinfo.value.condition == 1

    def test_unrecoverable_state_named(self):
        pomdp = raw_pomdp()
        transitions = pomdp.transitions.copy()
        transitions[0] = np.eye(2)  # repair no longer works
        broken = POMDP(
            transitions=transitions,
            observations=pomdp.observations,
            rewards=pomdp.rewards,
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
            observation_labels=pomdp.observation_labels,
        )
        with pytest.raises(ConditionViolation, match="fault"):
            check_condition_1(broken, NULL_MASK)

    def test_exempt_states_skipped(self):
        pomdp = raw_pomdp()
        transitions = pomdp.transitions.copy()
        transitions[0] = np.eye(2)
        broken = POMDP(
            transitions=transitions,
            observations=pomdp.observations,
            rewards=pomdp.rewards,
        )
        check_condition_1(
            broken, NULL_MASK, exempt_states=np.array([True, False])
        )

    def test_wrong_mask_length_rejected(self):
        with pytest.raises(ModelError):
            check_condition_1(raw_pomdp(), np.array([True]))


class TestCondition2:
    def test_passes_for_nonpositive(self):
        check_condition_2(raw_pomdp())

    def test_positive_reward_named(self):
        pomdp = raw_pomdp()
        rewards = pomdp.rewards.copy()
        rewards[1, 0] = 0.3
        broken = POMDP(
            transitions=pomdp.transitions,
            observations=pomdp.observations,
            rewards=rewards,
            state_labels=pomdp.state_labels,
            action_labels=pomdp.action_labels,
        )
        with pytest.raises(ConditionViolation) as excinfo:
            check_condition_2(broken)
        assert excinfo.value.condition == 2
        assert "observe" in str(excinfo.value)


class TestTerminationRewards:
    def test_rate_times_top(self):
        rewards = termination_rewards(RATES, 100.0, NULL_MASK)
        assert np.isclose(rewards[0], -50.0)

    def test_null_states_zero(self):
        rewards = termination_rewards(RATES, 100.0, NULL_MASK)
        assert rewards[1] == 0.0

    def test_negative_top_rejected(self):
        with pytest.raises(ModelError):
            termination_rewards(RATES, -1.0, NULL_MASK)


class TestMakeNullAbsorbing:
    def test_null_becomes_absorbing_and_free(self):
        modified = make_null_absorbing(raw_pomdp(), NULL_MASK)
        for action in range(modified.n_actions):
            assert modified.transitions[action, 1, 1] == 1.0
            assert modified.rewards[action, 1] == 0.0

    def test_fault_dynamics_untouched(self):
        original = raw_pomdp()
        modified = make_null_absorbing(original, NULL_MASK)
        assert np.array_equal(
            modified.transitions[:, 0, :], original.transitions[:, 0, :]
        )
        assert np.array_equal(modified.rewards[:, 0], original.rewards[:, 0])


class TestWithTerminationAction:
    def test_shapes_grow_by_one(self):
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        assert augmented.n_states == 3
        assert augmented.n_actions == 3
        assert s_t == 2
        assert a_t == 2

    def test_terminate_action_goes_to_s_t(self):
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        assert np.allclose(augmented.transitions[a_t, :, s_t], 1.0)

    def test_s_t_absorbing_and_free_under_all_actions(self):
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        for action in range(augmented.n_actions):
            assert augmented.transitions[action, s_t, s_t] == 1.0
            assert augmented.rewards[action, s_t] == 0.0

    def test_termination_rewards_wired(self):
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        assert np.isclose(augmented.rewards[a_t, 0], -50.0)
        assert augmented.rewards[a_t, 1] == 0.0

    def test_observation_rows_still_stochastic(self):
        augmented, _, _ = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        assert np.allclose(augmented.observations.sum(axis=2), 1.0)


class TestRecoveryModelType:
    def make_model(self) -> RecoveryModel:
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        return RecoveryModel(
            pomdp=augmented,
            null_states=np.append(NULL_MASK, False),
            rate_rewards=np.append(RATES, 0.0),
            durations=np.array([1.0, 1.0, 0.0]),
            passive_actions=np.array([False, True, False]),
            recovery_notification=False,
            terminate_state=s_t,
            terminate_action=a_t,
            operator_response_time=100.0,
        )

    def test_fault_states_excludes_null_and_terminate(self):
        model = self.make_model()
        assert model.fault_states.tolist() == [True, False, False]

    def test_recovery_actions_mask(self):
        model = self.make_model()
        assert model.recovery_actions.tolist() == [True, False, False]

    def test_initial_belief_uniform_over_faults(self):
        model = self.make_model()
        assert np.allclose(model.initial_belief(), [1.0, 0.0, 0.0])

    def test_recovered_probability_includes_s_t(self):
        model = self.make_model()
        assert np.isclose(
            model.recovered_probability(np.array([0.2, 0.5, 0.3])), 0.8
        )

    def test_is_recovered(self):
        model = self.make_model()
        assert model.is_recovered(1)
        assert not model.is_recovered(0)
        assert not model.is_recovered(2)

    def test_positive_rate_rewards_rejected(self):
        augmented, s_t, a_t = with_termination_action(
            raw_pomdp(), NULL_MASK, RATES, 100.0
        )
        with pytest.raises(ModelError, match="rate_rewards"):
            RecoveryModel(
                pomdp=augmented,
                null_states=np.append(NULL_MASK, False),
                rate_rewards=np.array([0.5, 0.0, 0.0]),
                durations=np.zeros(3),
                passive_actions=np.zeros(3, dtype=bool),
                recovery_notification=False,
                terminate_state=s_t,
                terminate_action=a_t,
                operator_response_time=100.0,
            )

    def test_notified_model_must_not_have_terminate_pair(self):
        pomdp = make_null_absorbing(raw_pomdp(), NULL_MASK)
        with pytest.raises(ModelError):
            RecoveryModel(
                pomdp=pomdp,
                null_states=NULL_MASK,
                rate_rewards=RATES,
                durations=np.ones(2),
                passive_actions=np.array([False, True]),
                recovery_notification=True,
                terminate_state=1,
                terminate_action=1,
            )

    def test_unnotified_model_requires_terminate_pair(self):
        pomdp = make_null_absorbing(raw_pomdp(), NULL_MASK)
        with pytest.raises(ModelError):
            RecoveryModel(
                pomdp=pomdp,
                null_states=NULL_MASK,
                rate_rewards=RATES,
                durations=np.ones(2),
                passive_actions=np.array([False, True]),
                recovery_notification=False,
            )
