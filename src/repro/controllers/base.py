"""The controller protocol shared by every recovery strategy.

A controller's life cycle, mirroring Section 4's description of the decision
loop: ``reset()`` at fault-detection time, then alternating ``observe()``
(Bayesian belief update with the latest monitor outputs, Eq. 4) and
``decide()`` (choose the next recovery action) until a decision with
``is_terminate`` set ends the episode.  The campaign driver in
:mod:`repro.sim` owns the loop; controllers only own belief tracking and
action selection, and they never see the true system state (except the
oracle, which overrides the hook provided for it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import BeliefError, ControllerError
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.belief import update_belief
from repro.recovery.model import RecoveryModel
from repro.util.timing import Stopwatch

#: Sentinel action index for terminating decisions that execute nothing.
#: Only controllers on models *without* a terminate action (recovery
#: notification, Figure 2(a)) may emit it: their termination is a pure
#: bookkeeping step.  Where the model has ``a_T``, terminating decisions
#: carry it (see :meth:`RecoveryController._terminate_decision`) so the
#: environment charges the termination reward.  The campaign, trace, and
#: metrics layers treat ``NO_ACTION`` as "execute nothing": it is never run
#: against the environment, counted as a recovery action, or rendered as an
#: action label.
NO_ACTION = -1


@dataclass(frozen=True)
class Decision:
    """One controller decision.

    Attributes:
        action: index of the chosen action in the model's action space, or
            :data:`NO_ACTION` when ``is_terminate`` is True and there is
            nothing to execute (models with recovery notification have no
            ``a_T``).
        is_terminate: the controller declares recovery finished.  For the
            bounded controller this coincides with choosing ``a_T``; for
            the baselines it is the probability-threshold test.
        value: the root value of the lookahead tree, when one was built.
    """

    action: int
    is_terminate: bool = False
    value: float | None = None

    @property
    def executes_action(self) -> bool:
        """True when ``action`` is a real model action to run."""
        return self.action >= 0


class RecoveryController(abc.ABC):
    """Base class handling belief tracking, timing, and episode state."""

    #: Display name used in experiment tables (subclasses override).
    name: str = "controller"

    #: Integer diagnostic counters that accumulate across a campaign's
    #: episodes (subclasses list attribute names here).  The campaign
    #: engine runs episodes on controller clones; it reads this to merge
    #: each chunk's counter deltas back into the caller's controller.
    CAMPAIGN_COUNTERS: tuple[str, ...] = ()

    def refinement_state(self):
        """The mutable bound-vector set this controller refines, if any.

        The campaign engine merges the refinements its controller clones
        produce back into this object (see :mod:`repro.sim.parallel`).
        Subclasses with a differently-named set override this; returning
        ``None`` opts out of refinement merging.
        """
        return getattr(self, "bound_set", None)

    def __init__(self, model: RecoveryModel, preflight: bool = False):
        """Args:
            model: the (augmented) recovery model to control.
            preflight: run the static analyzer over ``model`` before the
                first action can be taken.  Error findings raise
                :class:`~repro.exceptions.AnalysisError` (carrying the full
                report); otherwise the report is kept on
                :attr:`preflight_report` so operators can surface warnings
                (loose bounds, dead observations) at deployment time.
        """
        self.model = model
        self.stopwatch = Stopwatch()
        self._belief: np.ndarray | None = None
        self._done = True
        self.preflight_report = None
        if preflight:
            from repro.analysis.passes import analyze

            report = analyze(model)
            report.raise_if_errors()
            self.preflight_report = report

    # -- episode life cycle -------------------------------------------------

    def reset(self, initial_belief: np.ndarray | None = None) -> None:
        """Start a new recovery episode.

        The default initial belief is the paper's "all faults equally
        likely" distribution; the campaign then immediately feeds the first
        monitor outputs through :meth:`observe`.
        """
        if initial_belief is None:
            self._belief = self.model.initial_belief()
        else:
            belief = np.asarray(initial_belief, dtype=float)
            if belief.shape != (self.model.pomdp.n_states,):
                raise ControllerError(
                    f"initial belief must have length {self.model.pomdp.n_states}"
                )
            self._belief = belief.copy()
        self._done = False
        self._on_reset()

    @property
    def belief(self) -> np.ndarray:
        """The controller's current belief state (copy)."""
        if self._belief is None:
            raise ControllerError("controller has not been reset onto an episode")
        return self._belief.copy()

    @property
    def done(self) -> bool:
        """True once the controller has terminated the current episode."""
        return self._done

    def observe(self, action: int, observation: int) -> None:
        """Fold the monitor outputs after ``action`` into the belief (Eq. 4).

        If the observation is impossible under the current belief (a
        model/environment mismatch), the belief is re-seeded from the
        initial fault distribution and the update retried, so the
        controller re-diagnoses instead of crashing mid-recovery.
        """
        if self._belief is None:
            raise ControllerError("observe() before reset()")
        if observation < 0:
            # The environment's terminate branch hands back the NO_OBSERVATION
            # sentinel; feeding it to Eq. 4 would silently index the last
            # observation column (numpy wraps negative indices) and corrupt
            # the belief.  No shipped loop does this — fail loudly if a
            # custom driver tries.
            raise ControllerError(
                f"observe() got negative observation {observation}; terminate "
                "executions produce no monitor outputs and must not be fed "
                "back into the belief update"
            )
        pomdp = self.model.pomdp
        try:
            self._belief = update_belief(pomdp, self._belief, action, observation)
        except BeliefError:
            fallback = self.model.initial_belief()
            telemetry = telemetry_active()
            try:
                self._belief = update_belief(pomdp, fallback, action, observation)
                fallback_recovered = True
            except BeliefError:
                self._belief = fallback
                fallback_recovered = False
            if telemetry is not None:
                telemetry.count("belief.update_failures")
                telemetry.event(
                    "belief_update_failure",
                    action=int(action),
                    observation=int(observation),
                    fallback_recovered=fallback_recovered,
                )

    def decide(self) -> Decision:
        """Choose the next action; timed for the "algorithm time" metric."""
        if self._belief is None:
            raise ControllerError("decide() before reset()")
        if self._done:
            raise ControllerError("decide() after the episode terminated")
        with self.stopwatch:
            decision = self._decide(self._belief)
        if decision.is_terminate:
            self._done = True
        return decision

    def _terminate_decision(self, value: float | None = None) -> Decision:
        """A terminating decision that executes ``a_T`` where the model has one.

        Threshold and notification exits used to return a bare ``action=-1``
        sentinel; on models with a terminate action that skipped the
        termination-reward charge entirely (the operator-response cost of
        walking away from a live fault, Section 3.1).  Now the decision
        carries ``a_T`` whenever it exists — the campaign executes it, and
        the environment charges ``r(s, a_T)`` (zero once recovered) — and
        falls back to :data:`NO_ACTION` only for recovery-notification
        models, whose termination is pure bookkeeping.
        """
        action = self.model.terminate_action
        return Decision(
            action=NO_ACTION if action is None else action,
            is_terminate=True,
            value=value,
        )

    def sync_true_state(self, state: int) -> None:
        """Ground-truth hook; a no-op for every honest controller.

        The campaign calls this after every environment transition.  Only
        the oracle controller overrides it — it models omniscient
        diagnosis, not something a real controller could do.
        """

    # -- subclass responsibilities -------------------------------------------

    def _on_reset(self) -> None:
        """Per-episode subclass state reset (optional)."""

    @abc.abstractmethod
    def _decide(self, belief: np.ndarray) -> Decision:
        """Choose an action for ``belief`` (already guarded and timed)."""
