"""Benchmark harness package (one benchmark per paper artifact/claim)."""
