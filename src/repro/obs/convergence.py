"""Bound-convergence analytics over recorded ``refine`` events.

The paper's Figure 5(a) argues that incremental refinement tightens the
lower bound quickly at the visited beliefs and then stabilises; HSVI-style
solvers are routinely evaluated with exactly this signal — bound gap versus
refinement count and versus wall-clock.  This module recovers both series
from a ``repro-obs/v2`` JSONL run: every :func:`repro.bounds.incremental.refine_at`
call records the post-insertion bound value at the visited belief, the
per-refinement improvement, the set size, and the cumulative
dominated/evicted totals.

Refinements are split into two phases:

* **bootstrap** — refinements performed outside episodes (the
  :func:`repro.controllers.bootstrap.bootstrap_bounds` sweep runs in the
  coordinating process before any fault is injected);
* **online** — refinements at the beliefs "naturally generated during the
  course of system recovery" (Section 4.1), recognised by the ``chunk``
  tag the campaign join step stamps on chunk-buffered events or by
  enclosing ``episode_start``/``episode_end`` markers.

The *gap* of refinement ``i`` is the improvement still to come in its
phase: ``sum(improvement) - cumsum(improvement)[i]``.  It is a relative
measure (the true fixed point is unknown online), decreasing to zero by
construction — the shape, not the endpoint, is the signal: a fast-falling
gap curve is the rapid-then-stable profile of Figure 5(a).

Wall-clock stamps (``t``) are per-registry offsets; events absorbed from
campaign chunks are rebased end-to-end here, the same virtual-timeline
treatment the span merge applies, so the wall-clock series is monotone.

``python -m repro.obs convergence run.jsonl`` renders both series as text
tables; ``--png PATH`` additionally writes a two-panel plot when
matplotlib is importable (it is an optional dependency — without it the
flag degrades to a warning, not an error).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.util.tables import render_table

#: Maximum rows per rendered text table; longer series are sampled evenly
#: (first and last refinement always shown).
MAX_TABLE_ROWS = 20


@dataclass(frozen=True)
class RefinementRecord:
    """One ``refine`` event, positioned on the campaign timeline.

    Attributes:
        index: 0-based position within the record's phase.
        phase: ``"bootstrap"`` or ``"online"``.
        t: rebased wall-clock offset in seconds (monotone across chunks).
        value: lower-bound value at the visited belief after insertion.
        improvement: how much this refinement raised the bound there.
        added: whether the hyperplane was inserted.
        set_size: bound-vector count after the update.
        dominated: cumulative dominance rejections of the recording set.
        evicted: cumulative evictions of the recording set.
        action: backup action that produced the hyperplane.
        chunk: campaign chunk the refinement ran in (``None`` outside
            campaigns, e.g. the bootstrap sweep).
    """

    index: int
    phase: str
    t: float
    value: float
    improvement: float
    added: bool
    set_size: int
    dominated: int
    evicted: int
    action: int
    chunk: int | None


def read_refinements(path: str | Path) -> list[RefinementRecord]:
    """Extract phase-tagged, time-rebased refinement records from a run.

    v1 streams (whose ``refine`` events lack the convergence extras) are
    accepted: missing ``value``/``t`` default to 0.0, so the
    refinement-indexed series still renders.
    """
    raw: list[tuple[dict, str]] = []
    in_episode = False
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            if not line.strip():
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                continue
            kind = record.get("event")
            if kind == "episode_start":
                in_episode = True
            elif kind == "episode_end":
                in_episode = False
            elif kind == "refine":
                online = in_episode or "chunk" in record
                raw.append((record, "online" if online else "bootstrap"))

    # Rebase per-registry wall-clock stamps end-to-end: events arrive
    # grouped by source registry (the coordinating process, then each chunk
    # in order), so each group's clock starts where the previous ended.
    records: list[RefinementRecord] = []
    counts = {"bootstrap": 0, "online": 0}
    base = 0.0
    group_key: object = object()  # sentinel != any chunk value
    group_start = 0.0
    group_extent = 0.0
    for record, phase in raw:
        chunk = record.get("chunk")
        t = float(record.get("t", 0.0))
        if chunk != group_key:
            base += group_extent
            group_key = chunk
            group_start = t
            group_extent = 0.0
        relative = max(0.0, t - group_start)
        group_extent = max(group_extent, relative)
        records.append(
            RefinementRecord(
                index=counts[phase],
                phase=phase,
                t=base + relative,
                value=float(record.get("value", 0.0)),
                improvement=float(record.get("improvement", 0.0)),
                added=bool(record.get("added", False)),
                set_size=int(record.get("set_size", 0)),
                dominated=int(record.get("dominated", 0)),
                evicted=int(record.get("evicted", 0)),
                action=int(record.get("action", -1)),
                chunk=chunk if isinstance(chunk, int) else None,
            )
        )
        counts[phase] += 1
    return records


def gap_series(
    records: list[RefinementRecord], phase: str
) -> list[tuple[RefinementRecord, float, float]]:
    """``(record, cumulative_improvement, gap)`` triples for one phase.

    The gap is the phase's remaining total improvement after each
    refinement — the distance still to travel to the phase's final bound
    quality, falling monotonically to zero.
    """
    phase_records = [r for r in records if r.phase == phase]
    total = sum(r.improvement for r in phase_records)
    series = []
    cumulative = 0.0
    for record in phase_records:
        cumulative += record.improvement
        series.append((record, cumulative, max(0.0, total - cumulative)))
    return series


def _sample(rows: list, limit: int = MAX_TABLE_ROWS) -> list:
    """Evenly sample ``rows`` down to ``limit``, keeping first and last."""
    if len(rows) <= limit:
        return rows
    step = (len(rows) - 1) / (limit - 1)
    indices = sorted({round(i * step) for i in range(limit)})
    return [rows[i] for i in indices]


def format_report(records: list[RefinementRecord]) -> str:
    """Gap-vs-refinement and gap-vs-wallclock tables for both phases."""
    if not records:
        return "no refine events in stream\n"
    sections: list[str] = []
    for phase in ("bootstrap", "online"):
        series = gap_series(records, phase)
        if not series:
            continue
        rows = [
            [
                record.index,
                f"{record.t:.4f}",
                f"{record.value:.4f}",
                f"{record.improvement:.4f}",
                f"{cumulative:.4f}",
                f"{gap:.4f}",
                record.set_size,
                record.dominated,
                record.evicted,
            ]
            for record, cumulative, gap in _sample(series)
        ]
        accepted = sum(1 for record, _, _ in series if record.added)
        title = (
            f"{phase} refinements (n={len(series)}, accepted={accepted}, "
            f"sampled to {len(rows)} rows)"
        )
        sections.append(
            render_table(
                [
                    "refine",
                    "t (s)",
                    "value",
                    "improvement",
                    "cum. improvement",
                    "gap",
                    "|B|",
                    "dominated",
                    "evicted",
                ],
                rows,
                title=title,
            )
        )
    if not sections:
        return "no refine events in stream\n"
    return "\n\n".join(sections) + "\n"


def save_png(records: list[RefinementRecord], path: str | Path) -> bool:
    """Write a two-panel gap plot; returns False when matplotlib is absent.

    matplotlib is an optional dependency — the container the repo targets
    may not ship it, so the import is gated and the caller degrades to the
    text report.
    """
    try:
        import matplotlib
    except ImportError:
        return False
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, (by_index, by_time) = plt.subplots(1, 2, figsize=(11, 4))
    for phase, style in (("bootstrap", "C0"), ("online", "C1")):
        series = gap_series(records, phase)
        if not series:
            continue
        gaps = [gap for _, _, gap in series]
        by_index.plot(
            [record.index for record, _, _ in series], gaps, style, label=phase
        )
        by_time.plot(
            [record.t for record, _, _ in series], gaps, style, label=phase
        )
    by_index.set_xlabel("refinement")
    by_time.set_xlabel("wall-clock (s)")
    for axis in (by_index, by_time):
        axis.set_ylabel("bound gap (remaining improvement)")
        axis.legend()
        axis.grid(True, alpha=0.3)
    figure.suptitle("Lower-bound convergence (cf. Figure 5(a))")
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)
    return True
