"""Heuristic search value iteration (HSVI) for discounted POMDPs.

The natural consumer of a *pair* of bounds: HSVI maintains a piecewise-
linear lower bound (the same hyperplane sets the recovery controller uses)
and a sawtooth upper bound, and repeatedly simulates the trajectory along
which the gap between them is largest, backing both bounds up on the way
back.  It terminates when the gap at the initial belief is below a target
``epsilon`` — giving an *anytime, certified* approximation, which is the
promise behind the paper's future-work line about upper bounds and
branch-and-bound.

Discounted models only: the depth of the explored trajectory is bounded by
``log(epsilon / gap) / log(discount)``, which is infinite at discount 1
(and epsilon-optimality itself is undecidable there, Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.incremental import refine_at
from repro.bounds.sawtooth import SawtoothUpperBound
from repro.bounds.vector_set import BoundVectorSet
from repro.bounds.ra_bound import ra_bound_vector
from repro.exceptions import ModelError, NotConvergedError
from repro.pomdp.belief import GAMMA_EPSILON
from repro.pomdp.model import POMDP


@dataclass(frozen=True)
class HSVISolution:
    """Certified bound pair produced by HSVI.

    Attributes:
        lower: hyperplane lower bound (usable as a controller leaf).
        upper: sawtooth upper bound.
        gap: final upper-lower gap at the initial belief (<= epsilon on
            success).
        trials: explored trajectories.
        initial_belief: where the certificate holds.
    """

    lower: BoundVectorSet
    upper: SawtoothUpperBound
    gap: float
    trials: int
    initial_belief: np.ndarray

    def value(self, belief: np.ndarray) -> float:
        """Midpoint estimate at ``belief``."""
        return 0.5 * (self.lower.value(belief) + self.upper.value(belief))


def _best_upper_action(pomdp: POMDP, upper: SawtoothUpperBound, belief):
    """Action maximising the one-step backup of the upper bound (IE-MAX)."""
    best_action, best_value, best_children = 0, -np.inf, None
    for action in range(pomdp.n_actions):
        predicted = belief @ pomdp.transitions[action]
        joint = predicted[:, None] * pomdp.observations[action]
        gamma = joint.sum(axis=0)
        reachable = np.flatnonzero(gamma > GAMMA_EPSILON)
        posteriors = (joint[:, reachable] / gamma[reachable]).T
        value = float(belief @ pomdp.rewards[action]) + pomdp.discount * float(
            gamma[reachable] @ upper.value_batch(posteriors)
        )
        if value > best_value:
            best_action, best_value = action, value
            best_children = (gamma[reachable], posteriors)
    return best_action, best_children


def solve_hsvi(
    pomdp: POMDP,
    initial_belief: np.ndarray | None = None,
    epsilon: float = 1e-2,
    max_trials: int = 2_000,
    max_depth: int = 200,
) -> HSVISolution:
    """Run HSVI until the bound gap at ``initial_belief`` is <= ``epsilon``.

    Args:
        pomdp: a discounted model (``discount < 1`` enforced).
        initial_belief: certificate belief; uniform when None.
        epsilon: target gap.
        max_trials: trajectory budget before
            :class:`~repro.exceptions.NotConvergedError`.
        max_depth: per-trajectory depth cap.
    """
    if pomdp.discount >= 1.0:
        raise ModelError(
            "HSVI requires discount < 1; undiscounted recovery models use "
            "the RA-Bound machinery instead"
        )
    if initial_belief is None:
        initial_belief = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
    initial_belief = np.asarray(initial_belief, dtype=float)

    lower = BoundVectorSet(ra_bound_vector(pomdp))
    upper = SawtoothUpperBound(pomdp)

    def gap_at(belief: np.ndarray) -> float:
        return upper.value(belief) - float(np.max(lower.vectors @ belief))

    for trial in range(1, max_trials + 1):
        if gap_at(initial_belief) <= epsilon:
            return HSVISolution(
                lower=lower,
                upper=upper,
                gap=gap_at(initial_belief),
                trials=trial - 1,
                initial_belief=initial_belief,
            )
        # Forward pass: follow the upper bound's greedy action toward the
        # observation whose excess gap is largest.
        path = [initial_belief]
        belief = initial_belief
        for depth in range(1, max_depth + 1):
            target = epsilon / (pomdp.discount**depth)
            action, children = _best_upper_action(pomdp, upper, belief)
            gamma, posteriors = children
            excesses = np.array(
                [
                    probability * (gap_at(child) - target)
                    for probability, child in zip(gamma, posteriors)
                ]
            )
            best = int(np.argmax(excesses))
            if excesses[best] <= 0:
                break
            belief = posteriors[best]
            path.append(belief)
        # Backward pass: back both bounds up along the trajectory.
        for belief in reversed(path):
            refine_at(pomdp, lower, belief)
            upper.refine_at(belief)

    gap = gap_at(initial_belief)
    if gap <= epsilon:
        return HSVISolution(
            lower=lower,
            upper=upper,
            gap=gap,
            trials=max_trials,
            initial_belief=initial_belief,
        )
    raise NotConvergedError(
        f"HSVI gap {gap:.4g} > epsilon {epsilon} after {max_trials} trials",
        iterations=max_trials,
        residual=gap,
    )
