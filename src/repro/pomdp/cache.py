"""Per-model cache of the joint transition-observation factors.

Every belief-side hot path — the lookahead tree of Figure 1(b), the
incremental bound refinement of Section 4.1, and posterior enumeration —
needs the same quantity for a belief ``pi`` and action ``a``::

    joint[s', o] = sum_s pi(s) p(s'|s, a) q(o|s', a)

The belief-independent part, ``F_a[s, s', o] = p(s'|s, a) q(o|s', a)``, only
depends on the model, yet the naive evaluation rebuilds the ``(|S'|, |O|)``
product from ``transitions`` and ``observations`` at every decision node.
:class:`JointFactorCache` precomputes ``F`` once per :class:`POMDP`, flattened
so the per-belief work collapses to a single GEMV:

* ``joint(belief, a)`` — one ``(|S|,) @ (|S|, |S'|*|O|)`` product;
* ``joint_all(belief)`` — one ``(|S|,) @ (|S|, |A|*|S'|*|O|)`` product that
  yields every action's joint at once, removing the per-action Python loop
  from the innermost tree recursion.

POMDPs are frozen dataclasses whose arrays are never mutated after
validation, so a cache entry is valid for the lifetime of its model object;
derived models (``with_discount`` and friends) are new objects and get their
own entries.  Caches are registered per model *instance* and dropped
automatically when the model is garbage-collected.  Models whose factor
tensor would exceed :data:`MAX_CACHE_BYTES` are not cached —
:func:`get_joint_cache` returns ``None`` and callers fall back to the
two-product path, so memory use stays bounded on very large models.
"""

from __future__ import annotations

import os
import weakref

import numpy as np
import scipy.sparse as sp

from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.model import POMDP

#: Default upper limit on the bytes a single model's factor tensors may
#: occupy (both layouts together).  Past this, caching is declined.  The
#: effective limit is resolved per call by :func:`max_cache_bytes`: an
#: explicit ``max_bytes`` argument wins, then the ``REPRO_MAX_CACHE_BYTES``
#: environment variable, then this default.
MAX_CACHE_BYTES = 256 * 1024 * 1024

#: Environment variable overriding :data:`MAX_CACHE_BYTES`.
MAX_CACHE_BYTES_ENV = "REPRO_MAX_CACHE_BYTES"


def max_cache_bytes(max_bytes: int | None = None) -> int:
    """Resolve the effective cache budget.

    Precedence: the ``max_bytes`` argument (callers and constructors),
    then ``REPRO_MAX_CACHE_BYTES`` in the environment, then the
    :data:`MAX_CACHE_BYTES` default.
    """
    if max_bytes is not None:
        return int(max_bytes)
    from_env = os.environ.get(MAX_CACHE_BYTES_ENV)
    if from_env is not None:
        return int(from_env)
    return MAX_CACHE_BYTES


def charge_block(
    n_bytes: int,
    *,
    n_states: int,
    kind: str = "leaf_block",
    max_bytes: int | None = None,
) -> bool:
    """Charge a transient batched-evaluation block against the cache budget.

    The batched depth-1 expansion materialises per-decision score blocks of
    ``O((k + 3) * |A| * |O|)`` doubles; like the persistent factor caches,
    those allocations must answer to :func:`max_cache_bytes` *before* they
    exist.  Returns True when the block fits the budget.  A decline emits
    the same process-local ``cache.declines`` counter and ``cache_decline``
    event as a declined cache build (tagged with ``kind``), and the caller
    falls back to its looped path.
    """
    limit = max_cache_bytes(max_bytes)
    if n_bytes <= limit:
        return True
    telemetry = telemetry_active()
    if telemetry is not None:
        telemetry.count_process("cache.declines")
        telemetry.event(
            "cache_decline",
            n_states=int(n_states),
            required_bytes=int(n_bytes),
            limit_bytes=int(limit),
            kind=kind,
        )
    return False


class JointFactorCache:
    """Precomputed ``p(s', o | s, a)`` factors for one POMDP.

    Two layouts of the same tensor are kept so that both access patterns
    are a single contiguous matrix product:

    * ``_per_action[a]`` has shape ``(|S|, |S'|*|O|)``;
    * ``_stacked`` has shape ``(|S|, |A|*|S'|*|O|)``.
    """

    def __init__(self, pomdp: POMDP, max_bytes: int | None = None):
        self.max_bytes = max_cache_bytes(max_bytes)
        n_actions = pomdp.n_actions
        n_states = pomdp.n_states
        n_observations = pomdp.n_observations
        factors = (
            pomdp.transitions[:, :, :, None] * pomdp.observations[:, None, :, :]
        )
        self._per_action = np.ascontiguousarray(
            factors.reshape(n_actions, n_states, n_states * n_observations)
        )
        self._stacked = np.ascontiguousarray(
            self._per_action.transpose(1, 0, 2).reshape(
                n_states, n_actions * n_states * n_observations
            )
        )
        self.n_actions = n_actions
        self.n_states = n_states
        self.n_observations = n_observations
        self._model_ref = weakref.ref(pomdp)

    @property
    def nbytes(self) -> int:
        """Memory the cached factor tensors occupy."""
        return self._per_action.nbytes + self._stacked.nbytes

    def joint(self, belief: np.ndarray, action: int) -> np.ndarray:
        """``joint[s', o]`` for one action at ``belief``; shape ``(|S'|, |O|)``."""
        return (belief @ self._per_action[action]).reshape(
            self.n_states, self.n_observations
        )

    def joint_all(self, belief: np.ndarray) -> np.ndarray:
        """Every action's joint at once; shape ``(|A|, |S'|, |O|)``."""
        return (belief @ self._stacked).reshape(
            self.n_actions, self.n_states, self.n_observations
        )


class SparseJointFactorCache:
    """Per-action CSR joint factors ``p(s', o | s, a)`` for a sparse POMDP.

    The dense cache flattens ``F_a`` into contiguous GEMV operands; on the
    sparse backend the same tensor is the per-action CSR product of ``T_a``
    with the observation matrix, built row-expansion style without ever
    densifying: entry ``(s, s')`` of ``T_a`` fans out into the non-zeros of
    observation row ``s'``, landing at flattened column ``s' * |O| + o``.
    ``joint``/``joint_all`` return dense arrays shaped exactly like the
    dense cache's, so every downstream consumer is backend-agnostic.
    """

    def __init__(self, pomdp: POMDP, max_bytes: int | None = None):
        self.max_bytes = max_cache_bytes(max_bytes)
        self.n_actions = pomdp.n_actions
        self.n_states = pomdp.n_states
        self.n_observations = pomdp.n_observations
        self._factors = [
            _sparse_joint_factor(
                pomdp.transitions.action_matrix(action),
                pomdp.observations.matrix(action),
            )
            for action in range(pomdp.n_actions)
        ]
        self._model_ref = weakref.ref(pomdp)

    @property
    def nbytes(self) -> int:
        """Memory the cached CSR factors occupy."""
        return sum(
            factor.data.nbytes + factor.indices.nbytes + factor.indptr.nbytes
            for factor in self._factors
        )

    def joint(self, belief: np.ndarray, action: int) -> np.ndarray:
        """``joint[s', o]`` for one action at ``belief``; shape ``(|S'|, |O|)``."""
        flat = np.asarray(self._factors[action].T @ belief).ravel()
        return flat.reshape(self.n_states, self.n_observations)

    def joint_all(self, belief: np.ndarray) -> np.ndarray:
        """Every action's joint at once; shape ``(|A|, |S'|, |O|)``."""
        out = np.empty((self.n_actions, self.n_states, self.n_observations))
        for action in range(self.n_actions):
            out[action] = self.joint(belief, action)
        return out


def _sparse_joint_factor(
    transition: sp.csr_matrix, observation: sp.csr_matrix
) -> sp.csr_matrix:
    """CSR ``(|S|, |S'|*|O|)`` with ``F[s, s'*|O| + o] = p(s'|s) q(o|s')``."""
    t = transition.tocoo()
    obs = observation.tocsr()
    n_observations = obs.shape[1]
    counts = np.diff(obs.indptr)[t.col]
    rows = np.repeat(t.row, counts)
    # Flattened observation indices of each destination state's non-zeros.
    starts = obs.indptr[t.col]
    offsets = np.arange(counts.sum()) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    obs_pos = np.repeat(starts, counts) + offsets
    cols = np.repeat(t.col, counts) * n_observations + obs.indices[obs_pos]
    data = np.repeat(t.data, counts) * obs.data[obs_pos]
    return sp.csr_matrix(
        (data, (rows, cols)),
        shape=(transition.shape[0], transition.shape[1] * n_observations),
    )


def cache_size_bytes(pomdp: POMDP) -> int:
    """Bytes the factor cache would need for ``pomdp``.

    Dense backend: both flattened layouts,
    ``2 * 8 * |A| * |S|^2 * |O|``.  Sparse backend: a CSR estimate from the
    stored non-zero counts (each transition entry fans out into at most the
    densest observation row, 12 bytes per CSR non-zero).
    """
    if pomdp.backend.is_sparse:
        transitions = pomdp.transitions
        obs_nnz_per_row = max(
            1, int(np.diff(pomdp.observations.base.indptr).max(initial=1))
        )
        t_nnz = transitions.base.nnz * transitions.n_actions + transitions.rows.nnz
        return 12 * t_nnz * obs_nnz_per_row
    return (
        2
        * 8
        * pomdp.n_actions
        * pomdp.n_states
        * pomdp.n_states
        * pomdp.n_observations
    )


#: Live caches keyed by model identity (the model may be unhashable, so the
#: registry keys on ``id``; a finalizer removes the entry when the model is
#: collected, and identity is re-checked on every hit to survive id reuse).
_CACHES: dict[int, JointFactorCache | SparseJointFactorCache] = {}


def get_joint_cache(
    pomdp: POMDP, max_bytes: int | None = None
) -> JointFactorCache | SparseJointFactorCache | None:
    """The shared factor cache for ``pomdp``, or ``None`` when too large.

    The first call for a model builds the cache (an ``O(|A| |S|^2 |O|)``
    one-off on the dense backend, a CSR product per action on the sparse
    one); subsequent calls return the same object.  ``max_bytes`` overrides
    the resolved budget (see :func:`max_cache_bytes`) for callers that want
    a different one.
    """
    # Cache outcomes are *process-local* telemetry: a build happens once per
    # process per model, so hit/build/decline splits legitimately vary with
    # the campaign worker count (unlike the deterministic counters).
    telemetry = telemetry_active()
    if telemetry is None:
        return _lookup_joint_cache(pomdp, max_bytes, None)
    with telemetry.trace_span("cache.lookup", category="cache"):
        # The timer span doubles as the cache.lookup latency histogram,
        # so hit-path cost vs. first-build cost shows up as distribution
        # tails rather than a single averaged total.
        with telemetry.span("cache.lookup"):
            return _lookup_joint_cache(pomdp, max_bytes, telemetry)


def _lookup_joint_cache(
    pomdp: POMDP, max_bytes: int | None, telemetry
) -> JointFactorCache | SparseJointFactorCache | None:
    limit = max_cache_bytes(max_bytes)
    required = cache_size_bytes(pomdp)
    if required > limit:
        if telemetry is not None:
            telemetry.count_process("cache.declines")
            telemetry.event(
                "cache_decline",
                n_states=pomdp.n_states,
                required_bytes=required,
                limit_bytes=limit,
                backend=pomdp.backend.name,
            )
        return None
    key = id(pomdp)
    cache = _CACHES.get(key)
    if cache is not None and cache._model_ref() is pomdp:
        if telemetry is not None:
            telemetry.count_process("cache.hits")
        return cache
    if pomdp.backend.is_sparse:
        cache = SparseJointFactorCache(pomdp, max_bytes=limit)
    else:
        cache = JointFactorCache(pomdp, max_bytes=limit)
    _CACHES[key] = cache
    weakref.finalize(pomdp, _CACHES.pop, key, None)
    if telemetry is not None:
        telemetry.count_process("cache.builds")
        telemetry.event(
            "cache_build", n_states=pomdp.n_states, nbytes=cache.nbytes
        )
    return cache


def clear_caches() -> None:
    """Drop every registered cache (tests and long-lived processes)."""
    _CACHES.clear()
