"""State classification and graph analyses for Markov chains.

The convergence arguments of Section 3.1 hinge on which states of the
RA-Bound chain are recurrent: Eq. 5 has a finite solution iff every action
originating in a recurrent state has zero reward.  This module computes the
recurrent/transient split from the chain's strongly-connected components,
and exposes the underlying graph analyses (SCC decomposition, reachability,
expected absorption time) for reuse by the static analyzer in
:mod:`repro.analysis`.

All analyses are networkx-backed when networkx is importable and fall back
to pure numpy/Python implementations otherwise, so the analyzer keeps
working in minimal deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import warnings

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
import scipy.sparse.linalg as spla

try:  # pragma: no cover - exercised indirectly via the fallback tests
    import networkx as nx

    HAVE_NETWORKX = True
except ImportError:  # pragma: no cover
    nx = None
    HAVE_NETWORKX = False

#: Probabilities below this are treated as structural zeros.
EDGE_EPSILON = 1e-12


@dataclass(frozen=True)
class ChainClassification:
    """Recurrent/transient structure of a finite Markov chain.

    Attributes:
        recurrent: boolean mask over states; ``True`` for states inside some
            closed (bottom) strongly-connected component.
        transient: boolean mask, the complement of ``recurrent``.
        absorbing: boolean mask of single-state closed classes with a
            self-loop probability of one.
        recurrent_classes: tuple of frozensets, one per closed SCC.
    """

    recurrent: np.ndarray
    transient: np.ndarray
    absorbing: np.ndarray
    recurrent_classes: tuple[frozenset, ...]


def _adjacency(chain):
    """Boolean adjacency of ``chain > EDGE_EPSILON`` — dense or CSR."""
    if sp.issparse(chain):
        coo = chain.tocoo()
        keep = coo.data > EDGE_EPSILON
        return sp.csr_matrix(
            (np.ones(int(keep.sum())), (coo.row[keep], coo.col[keep])),
            shape=chain.shape,
        )
    return np.asarray(chain, dtype=float) > EDGE_EPSILON


def _sparse_scc_labels(adjacency: sp.csr_matrix) -> tuple[int, np.ndarray]:
    """Strong-component labels via ``scipy.sparse.csgraph`` (vectorised)."""
    count, labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    return int(count), labels


def _sparse_closed_masks(adjacency: sp.csr_matrix) -> tuple[np.ndarray, list[frozenset]]:
    """Recurrent mask + closed classes of a sparse chain, without per-SCC loops.

    A component is closed iff no edge crosses out of it; one pass over the
    edge list marks every component with an outgoing cross edge as open.
    """
    count, labels = _sparse_scc_labels(adjacency)
    coo = adjacency.tocoo()
    cross = labels[coo.row] != labels[coo.col]
    open_components = np.zeros(count, dtype=bool)
    open_components[labels[coo.row[cross]]] = True
    recurrent = ~open_components[labels]
    classes = [
        frozenset(np.flatnonzero(labels == component).tolist())
        for component in np.flatnonzero(~open_components)
    ]
    return recurrent, classes


def _scc_networkx(adjacency: np.ndarray) -> list[frozenset]:
    n = adjacency.shape[0]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(adjacency)
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    return [frozenset(component) for component in nx.strongly_connected_components(graph)]


def _scc_tarjan(adjacency: np.ndarray) -> list[frozenset]:
    """Iterative Tarjan SCC — the pure-Python fallback (no recursion limit)."""
    n = adjacency.shape[0]
    successors = [np.flatnonzero(adjacency[s]).tolist() for s in range(n)]
    index = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[frozenset] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work item is (node, iterator position into its successors).
        work = [(root, 0)]
        while work:
            node, position = work.pop()
            if position == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for i in range(position, len(successors[node])):
                child = successors[node][i]
                if index[child] == -1:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                members = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member == node:
                        break
                components.append(frozenset(members))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


@dataclass(frozen=True)
class SCCSummary:
    """Vectorised strong-component decomposition of a chain's support graph.

    Unlike :func:`strongly_connected_components`, nothing here materialises
    per-component Python sets — just label/size/closedness arrays — so the
    analyzer can summarise the 300k-state tiered union graph without
    allocating |S| frozenset members.

    Attributes:
        count: number of strongly-connected components.
        labels: ``(n,)`` component label per state.
        sizes: ``(count,)`` number of states per component.
        closed: ``(count,)`` True for components with no outgoing edge
            (the recurrent classes when the graph is a chain's support).
    """

    count: int
    labels: np.ndarray
    sizes: np.ndarray
    closed: np.ndarray


def scc_summary(chain) -> SCCSummary:
    """SCC labels/sizes/closedness of ``chain > EDGE_EPSILON``, vectorised.

    Works on dense arrays and scipy sparse matrices alike; both route
    through :func:`scipy.sparse.csgraph.connected_components`, so the cost
    is O(nodes + edges) with no per-component Python loop.
    """
    adjacency = _adjacency(chain)
    if not sp.issparse(adjacency):
        adjacency = sp.csr_matrix(adjacency)
    count, labels = _sparse_scc_labels(adjacency)
    sizes = np.bincount(labels, minlength=count)
    coo = adjacency.tocoo()
    cross = labels[coo.row] != labels[coo.col]
    closed = np.ones(count, dtype=bool)
    closed[labels[coo.row[cross]]] = False
    return SCCSummary(count=count, labels=labels, sizes=sizes, closed=closed)


def strongly_connected_components(chain: np.ndarray) -> list[frozenset]:
    """SCCs of the directed graph induced by ``chain > EDGE_EPSILON``.

    ``chain`` may be a stochastic matrix or any non-negative weight matrix;
    only the sparsity pattern matters.  Uses networkx when available and an
    iterative Tarjan otherwise.
    """
    adjacency = _adjacency(chain)
    if sp.issparse(adjacency):
        count, labels = _sparse_scc_labels(adjacency)
        return [
            frozenset(np.flatnonzero(labels == component).tolist())
            for component in range(count)
        ]
    if HAVE_NETWORKX:
        return _scc_networkx(adjacency)
    return _scc_tarjan(adjacency)


def closed_components(chain) -> list[frozenset]:
    """The closed (no outgoing edge) SCCs — the recurrent classes."""
    adjacency = _adjacency(chain)
    if sp.issparse(adjacency):
        return _sparse_closed_masks(adjacency)[1]
    closed = []
    for component in strongly_connected_components(adjacency):
        members = np.fromiter(component, dtype=int)
        outside = np.ones(adjacency.shape[0], dtype=bool)
        outside[members] = False
        if not adjacency[np.ix_(members, outside)].any():
            closed.append(component)
    return closed


def classify_chain(chain) -> ChainClassification:
    """Classify the states of a row-stochastic ``chain``.

    A strongly-connected component is *closed* (and hence recurrent in a
    finite chain) iff no edge leaves it.  Accepts dense arrays and
    ``scipy.sparse`` matrices; the sparse path classifies the 300k-state
    tiered chain in one vectorised edge sweep.
    """
    if sp.issparse(chain):
        n = chain.shape[0]
        recurrent, recurrent_classes = _sparse_closed_masks(_adjacency(chain))
        absorbing = np.asarray(chain.diagonal()).ravel() >= 1.0 - EDGE_EPSILON
        return ChainClassification(
            recurrent=recurrent,
            transient=~recurrent,
            absorbing=absorbing,
            recurrent_classes=tuple(recurrent_classes),
        )
    chain = np.asarray(chain, dtype=float)
    n = chain.shape[0]
    recurrent = np.zeros(n, dtype=bool)
    recurrent_classes = []
    for component in closed_components(chain):
        recurrent_classes.append(component)
        for s in component:
            recurrent[s] = True

    absorbing = np.array(
        [chain[s, s] >= 1.0 - EDGE_EPSILON for s in range(n)], dtype=bool
    )
    return ChainClassification(
        recurrent=recurrent,
        transient=~recurrent,
        absorbing=absorbing,
        recurrent_classes=tuple(recurrent_classes),
    )


def reachable_set(chain, sources: np.ndarray) -> np.ndarray:
    """States reachable (in any number of steps) from the ``sources`` mask."""
    adjacency = _adjacency(chain)
    reached = np.asarray(sources, dtype=bool).copy()
    frontier = reached.copy()
    if sp.issparse(adjacency):
        transposed = adjacency.T.tocsr()
        while frontier.any():
            hits = np.asarray(transposed @ frontier.astype(float)).ravel()
            successors = hits > 0.0
            frontier = successors & ~reached
            reached |= successors
        return reached
    while frontier.any():
        successors = adjacency[frontier].any(axis=0)
        frontier = successors & ~reached
        reached |= successors
    return reached


def expected_absorption_time(
    chain: np.ndarray, targets: np.ndarray | None = None
) -> np.ndarray:
    """Expected number of steps for each state to enter ``targets``.

    ``targets`` defaults to the chain's recurrent set, making this the
    expected absorption time of the chain — the quantity that controls how
    loose the undiscounted RA-Bound is (a transient state that wanders for
    ``t`` expected steps accrues roughly ``t`` steps of average cost in
    Eq. 5).  Returns 0 on target states and ``inf`` on states that cannot
    reach the target set at all.

    Solves ``t = 1 + P_TT t`` over the non-target states with a linear
    solve — dense or sparse to match the chain (falls back to ``inf`` if
    the system is singular, which happens exactly when some non-target
    state never reaches a target).
    """
    if sp.issparse(chain):
        return _expected_absorption_time_sparse(chain, targets)
    chain = np.asarray(chain, dtype=float)
    n = chain.shape[0]
    if targets is None:
        target_mask = classify_chain(chain).recurrent
    else:
        target_mask = np.asarray(targets, dtype=bool).copy()
    times = np.zeros(n)
    outside = np.flatnonzero(~target_mask)
    if outside.size == 0:
        return times
    can_reach = reachable_set(chain.T, target_mask)
    hopeless = ~can_reach & ~target_mask
    times[hopeless] = np.inf
    solvable = np.flatnonzero(~target_mask & can_reach)
    if solvable.size == 0:
        return times
    sub = chain[np.ix_(solvable, solvable)]
    system = np.eye(solvable.size) - sub
    try:
        solution = np.linalg.solve(system, np.ones(solvable.size))
    except np.linalg.LinAlgError:
        solution = np.full(solvable.size, np.inf)
    times[solvable] = solution
    return times


def _expected_absorption_time_sparse(
    chain, targets: np.ndarray | None
) -> np.ndarray:
    n = chain.shape[0]
    chain = chain.tocsr()
    if targets is None:
        target_mask = classify_chain(chain).recurrent
    else:
        target_mask = np.asarray(targets, dtype=bool).copy()
    times = np.zeros(n)
    outside = np.flatnonzero(~target_mask)
    if outside.size == 0:
        return times
    can_reach = reachable_set(chain.T, target_mask)
    hopeless = ~can_reach & ~target_mask
    times[hopeless] = np.inf
    solvable = np.flatnonzero(~target_mask & can_reach)
    if solvable.size == 0:
        return times
    sub = chain[solvable][:, solvable]
    system = (sp.identity(solvable.size, format="csc") - sub).tocsc()
    with warnings.catch_warnings():
        warnings.simplefilter("error", spla.MatrixRankWarning)
        try:
            solution = spla.spsolve(system, np.ones(solvable.size))
        except (spla.MatrixRankWarning, RuntimeError):
            solution = np.full(solvable.size, np.inf)
    times[solvable] = solution
    return times
