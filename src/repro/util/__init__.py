"""Shared utilities: RNG handling, validation, timing, and table rendering."""

from repro.util.rng import as_generator, spawn_generators
from repro.util.tables import render_table
from repro.util.timing import Stopwatch
from repro.util.validation import (
    check_distribution,
    check_nonpositive,
    check_stochastic_matrix,
    normalize,
)

__all__ = [
    "Stopwatch",
    "as_generator",
    "check_distribution",
    "check_nonpositive",
    "check_stochastic_matrix",
    "normalize",
    "render_table",
    "spawn_generators",
]
