"""The recovery model: a POMDP plus recovery semantics (Section 3).

A :class:`RecoveryModel` is what controllers and the fault-injection
environment consume.  Its POMDP is already *augmented*: for systems with
recovery notification the null states are absorbing and zero-reward
(Figure 2(a)); for systems without, a terminate state ``s_T`` and action
``a_T`` have been appended with termination rewards
``r(s, a_T) = rbar(s) * t_op`` (Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConditionViolation, ModelError
from repro.mdp.classify import reachable_set
from repro.pomdp.model import POMDP

#: Label given to the appended terminate state / action.
TERMINATE_LABEL = "terminate"


def check_condition_1(
    pomdp: POMDP,
    null_states: np.ndarray,
    exempt_states: np.ndarray | None = None,
) -> None:
    """Condition 1: every state can reach some null-fault state.

    "Starting in any state s not in S_phi, there is at least one way to
    recover the system" — i.e. ``S_phi`` is reachable from every state in
    the graph whose edges are the union of all actions' transitions.

    Args:
        pomdp: the model to check.
        null_states: the ``S_phi`` mask.
        exempt_states: states excluded from the requirement; the appended
            terminate state ``s_T`` is absorbing *by design* and is the one
            legitimate exemption.

    Raises:
        ConditionViolation: naming the first unrecoverable state.
    """
    mask = np.asarray(null_states, dtype=bool)
    if mask.shape != (pomdp.n_states,):
        raise ModelError(
            f"null_states must be a mask of length {pomdp.n_states}"
        )
    if not mask.any():
        raise ConditionViolation(1, "the null-fault set S_phi is empty")
    union = pomdp.transitions.max(axis=0)  # structural union of all actions
    # Reachability *to* S_phi == reachability *from* S_phi in the reverse graph.
    can_recover = reachable_set(union.T, mask)
    if exempt_states is not None:
        can_recover = can_recover | np.asarray(exempt_states, dtype=bool)
    stuck = np.flatnonzero(~can_recover)
    if stuck.size:
        raise ConditionViolation(
            1,
            f"state {pomdp.state_labels[stuck[0]]!r} cannot reach any "
            f"null-fault state under any action sequence "
            f"({stuck.size} such states)",
        )


def check_condition_2(pomdp: POMDP) -> None:
    """Condition 2: all single-step rewards are non-positive."""
    worst = float(pomdp.rewards.max())
    if worst > 1e-9:
        action, state = np.unravel_index(
            int(pomdp.rewards.argmax()), pomdp.rewards.shape
        )
        raise ConditionViolation(
            2,
            f"r({pomdp.state_labels[state]!r}, "
            f"{pomdp.action_labels[action]!r}) = {worst:.3g} > 0",
        )


def termination_rewards(
    rate_rewards: np.ndarray,
    operator_response_time: float,
    null_states: np.ndarray,
) -> np.ndarray:
    """Termination rewards ``r(s, a_T)`` (Section 3.1).

    ``r(s, a_T) = rbar(s) * t_op`` for fault states and 0 for null states:
    terminating early leaves the system paying the fault's cost rate until a
    human operator responds, ``t_op`` seconds later.  ``rate_rewards`` are
    non-positive cost rates per second.
    """
    if operator_response_time < 0:
        raise ModelError(
            f"operator response time must be >= 0, got {operator_response_time}"
        )
    rates = np.asarray(rate_rewards, dtype=float)
    rewards = rates * operator_response_time
    rewards = np.where(np.asarray(null_states, dtype=bool), 0.0, rewards)
    return rewards


def make_null_absorbing(pomdp: POMDP, null_states: np.ndarray) -> POMDP:
    """Figure 2(a): rewire every action in ``S_phi`` to a zero-reward self-loop.

    With recovery notification the controller stops on entering ``S_phi``,
    so nothing that happens "after" matters; making the null states
    absorbing and free encodes that and gives Eq. 5 a finite solution.
    """
    mask = np.asarray(null_states, dtype=bool)
    transitions = pomdp.transitions.copy()
    rewards = pomdp.rewards.copy()
    null_index = np.flatnonzero(mask)
    for action in range(pomdp.n_actions):
        transitions[action][null_index, :] = 0.0
        transitions[action][null_index, null_index] = 1.0
        rewards[action][null_index] = 0.0
    return POMDP(
        transitions=transitions,
        observations=pomdp.observations,
        rewards=rewards,
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )


def with_termination_action(
    pomdp: POMDP,
    null_states: np.ndarray,
    rate_rewards: np.ndarray,
    operator_response_time: float,
) -> tuple[POMDP, int, int]:
    """Figure 2(b): append the terminate state ``s_T`` and action ``a_T``.

    * ``s_T`` is absorbing under every action with zero reward;
    * ``a_T`` moves every state to ``s_T`` with probability one and reward
      ``r(s, a_T)`` from :func:`termination_rewards`;
    * observations in ``s_T`` are uniform (they are never informative —
      the controller has already stopped).

    Returns ``(augmented_pomdp, terminate_state_index, terminate_action_index)``.
    """
    n_states = pomdp.n_states
    n_actions = pomdp.n_actions
    n_observations = pomdp.n_observations
    terminate_state = n_states
    terminate_action = n_actions

    transitions = np.zeros((n_actions + 1, n_states + 1, n_states + 1))
    transitions[:n_actions, :n_states, :n_states] = pomdp.transitions
    # Every original action self-loops in s_T.
    transitions[:n_actions, terminate_state, terminate_state] = 1.0
    # a_T sends every state (including s_T) to s_T.
    transitions[terminate_action, :, terminate_state] = 1.0

    observations = np.zeros((n_actions + 1, n_states + 1, n_observations))
    observations[:n_actions, :n_states, :] = pomdp.observations
    observations[:n_actions, terminate_state, :] = 1.0 / n_observations
    observations[terminate_action, :, :] = 1.0 / n_observations

    term_rewards = termination_rewards(
        rate_rewards, operator_response_time, null_states
    )
    rewards = np.zeros((n_actions + 1, n_states + 1))
    rewards[:n_actions, :n_states] = pomdp.rewards
    rewards[:n_actions, terminate_state] = 0.0
    rewards[terminate_action, :n_states] = term_rewards
    rewards[terminate_action, terminate_state] = 0.0

    augmented = POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        state_labels=pomdp.state_labels + (TERMINATE_LABEL,),
        action_labels=pomdp.action_labels + (TERMINATE_LABEL,),
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )
    return augmented, terminate_state, terminate_action


@dataclass(frozen=True)
class RecoveryModel:
    """A controller-ready recovery model.

    Attributes:
        pomdp: the augmented POMDP (see module docstring).
        null_states: mask over the augmented state space; True on ``S_phi``.
        rate_rewards: per-state cost rates ``rbar(s) <= 0`` (per second) on
            the augmented space (0 on ``s_T``).
        durations: per-action execution time ``t_a`` in seconds on the
            augmented action space (0 for ``a_T``).
        passive_actions: mask of purely observational actions (they never
            change the system state); used by the metrics layer to separate
            "monitor calls" from "recovery actions" in Table 1.
        recovery_notification: True when monitors reveal entry into
            ``S_phi`` (Figure 2(a) augmentation); False when the terminate
            pair was added (Figure 2(b)).
        terminate_state / terminate_action: indices of ``s_T`` / ``a_T``
            (None with recovery notification).
        operator_response_time: ``t_op`` used for the termination rewards
            (None with recovery notification).
    """

    pomdp: POMDP
    null_states: np.ndarray
    rate_rewards: np.ndarray
    durations: np.ndarray
    passive_actions: np.ndarray
    recovery_notification: bool
    terminate_state: int | None = None
    terminate_action: int | None = None
    operator_response_time: float | None = None
    fault_states: np.ndarray = field(init=False)

    def __post_init__(self):
        pomdp = self.pomdp
        null_states = np.asarray(self.null_states, dtype=bool)
        rate_rewards = np.asarray(self.rate_rewards, dtype=float)
        durations = np.asarray(self.durations, dtype=float)
        passive = np.asarray(self.passive_actions, dtype=bool)
        if null_states.shape != (pomdp.n_states,):
            raise ModelError("null_states mask has the wrong length")
        if rate_rewards.shape != (pomdp.n_states,):
            raise ModelError("rate_rewards has the wrong length")
        if np.any(rate_rewards > 1e-9):
            raise ModelError("rate_rewards must be non-positive cost rates")
        if durations.shape != (pomdp.n_actions,):
            raise ModelError("durations has the wrong length")
        if np.any(durations < 0):
            raise ModelError("durations must be non-negative")
        if passive.shape != (pomdp.n_actions,):
            raise ModelError("passive_actions mask has the wrong length")
        if self.recovery_notification:
            if self.terminate_action is not None or self.terminate_state is not None:
                raise ModelError(
                    "models with recovery notification have no terminate pair"
                )
        else:
            if self.terminate_action is None or self.terminate_state is None:
                raise ModelError(
                    "models without recovery notification need s_T and a_T"
                )
        exempt = None
        if self.terminate_state is not None:
            exempt = np.zeros(pomdp.n_states, dtype=bool)
            exempt[self.terminate_state] = True
        check_condition_1(pomdp, null_states, exempt_states=exempt)
        check_condition_2(pomdp)

        fault_states = ~null_states
        if self.terminate_state is not None:
            fault_states = fault_states.copy()
            fault_states[self.terminate_state] = False
        object.__setattr__(self, "null_states", null_states)
        object.__setattr__(self, "rate_rewards", rate_rewards)
        object.__setattr__(self, "durations", durations)
        object.__setattr__(self, "passive_actions", passive)
        object.__setattr__(self, "fault_states", fault_states)

    @property
    def recovery_actions(self) -> np.ndarray:
        """Mask of actions that actually repair state (not passive, not a_T)."""
        mask = ~self.passive_actions
        if self.terminate_action is not None:
            mask = mask.copy()
            mask[self.terminate_action] = False
        return mask

    def initial_belief(self) -> np.ndarray:
        """The paper's starting belief: all faults equally likely (Section 4)."""
        belief = np.zeros(self.pomdp.n_states)
        faults = self.fault_states
        belief[faults] = 1.0 / faults.sum()
        return belief

    def is_recovered(self, state: int) -> bool:
        """True when ``state`` is a null-fault state."""
        return bool(self.null_states[state])

    def recovered_probability(self, belief: np.ndarray) -> float:
        """``P[s in S_phi]`` under ``belief`` (plus ``s_T``, if present).

        This is the quantity baseline controllers threshold on to decide
        termination (Section 5's termination probability).
        """
        probability = float(belief[self.null_states].sum())
        if self.terminate_state is not None:
            probability += float(belief[self.terminate_state])
        return probability
