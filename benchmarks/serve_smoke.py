"""Policy-daemon smoke: SIGTERM mid-session, warm restart, identical decisions.

The CI guard for the serve-layer contract of :mod:`repro.serve`:

1. save a tiered model archive and start ``python -m repro.serve`` on it
   (cold start: RA-Bound seeding, no bound archive yet);
2. drive 8 concurrent refining sessions to completion over the unix
   socket, so the shared bound set accumulates online refinements;
3. open a read-only (``refine: false``) session, drive it halfway,
   deliver ``SIGTERM`` *mid-session*, then finish driving it through the
   draining daemon, recording every decision;
4. fail unless the daemon exits 0 (graceful drain), checkpoints the
   refined set, and unlinks its socket;
5. restart the daemon from the checkpoint (warm start, R3xx-certified
   via the digest sidecar), replay the same observation sequence in a
   fresh read-only session, and fail on any decision drift;
6. check the live operational plane on the warm daemon: ``health`` and
   ``ready`` answer truthfully, ``metrics`` serves both the JSON
   snapshot and Prometheus text exposition, and ``python -m repro.obs
   watch --once`` renders a frame against the socket;
7. **SLO gate** — fail if the warm daemon's session-decision p99, read
   from the ``serve.session_decide`` live histogram (which includes
   engine-lock queueing), exceeds the pinned ceiling
   (:data:`P99_CEILING_MS`, override with ``REPRO_SERVE_P99_CEILING_MS``);
8. validate the warm daemon's periodic metrics-snapshot JSONL flusher
   stream against the ``repro-obs/v3`` schema (kept under ``--keep`` as
   the CI artifact);
9. fail if the run leaked ``/dev/shm`` entries, socket files, or
   ``*.tmp`` archives anywhere in the work tree.

Usage::

    python -m benchmarks.serve_smoke [--tiers N] [--keep DIR]

Exit codes: 0 — contract holds; 1 — drift, leak, SLO breach, or unclean
shutdown; 2 — harness failure (daemon died for another reason).
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.io import TEMP_SUFFIX, save_recovery_model
from repro.serve.client import ServiceClient
from repro.systems.tiered import build_tiered_system

CONCURRENT_SESSIONS = 8
REPLAY_STEPS = 12
SIGTERM_AFTER = 1

#: Pinned warm-model session-decision p99 ceiling (milliseconds) for the
#: SLO gate.  Read from the live ``serve.session_decide`` histogram, so it
#: covers the whole service path including engine-lock queueing.  The 2x2
#: tiered model decides in well under a millisecond on any healthy machine;
#: the ceiling absorbs shared-runner noise, not real regressions in kind.
#: ``REPRO_SERVE_P99_CEILING_MS`` overrides it for other scales.
P99_CEILING_MS = 250.0


def p99_ceiling_ms() -> float:
    """The SLO ceiling, scaled by ``REPRO_SERVE_P99_CEILING_MS``."""
    return float(os.environ.get("REPRO_SERVE_P99_CEILING_MS", P99_CEILING_MS))


def _start_daemon(
    model: Path,
    socket_path: Path,
    bounds: Path,
    extra: list[str] | None = None,
) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--model",
            str(model),
            "--socket",
            str(socket_path),
            "--bounds",
            str(bounds),
            "--checkpoint-interval",
            "1",
            "--drain-timeout",
            "30",
            *(extra or []),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 120.0  # codelint: ignore[R903] -- harness timeout
    while not socket_path.exists():  # codelint: ignore[R903]
        if process.poll() is not None:
            print(process.stdout.read() if process.stdout else "")
            print(f"serve_smoke: daemon died on startup (rc={process.returncode})")
            raise SystemExit(2)
        if time.monotonic() > deadline:  # codelint: ignore[R903]
            process.kill()
            raise SystemExit(2)
        time.sleep(0.05)
    return process


def _drive_refining_sessions(socket_path: Path, failures: list[str]) -> None:
    """8 concurrent refining sessions, each one short recovery episode."""
    errors: list[str] = []

    def worker(index: int) -> None:
        try:
            with ServiceClient(str(socket_path), timeout=120.0) as client:
                sid = client.open_session(session_id=f"refine-{index}")
                for _ in range(10):
                    decision = client.decide(sid)
                    if decision["terminate"]:
                        break
                    client.observe(sid, decision["action"], index % 2)
                client.close_session(sid)
        except Exception as error:  # noqa: BLE001 — collected for the report
            errors.append(f"session {index}: {error}")

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(CONCURRENT_SESSIONS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    failures.extend(errors)


def _replay(
    client: ServiceClient,
    session_id: str,
    on_step=None,
) -> list[tuple[int, bool]]:
    """Drive one read-only session on a fixed observation schedule."""
    sid = client.open_session(session_id=session_id, refine=False)
    decisions: list[tuple[int, bool]] = []
    for step in range(REPLAY_STEPS):
        decision = client.decide(sid)
        decisions.append((decision["action"], decision["terminate"]))
        if on_step is not None:
            on_step(step)
        if decision["terminate"]:
            break
        client.observe(sid, decision["action"], step % 2)
    client.close_session(sid)
    return decisions


def _check_live_ops(
    client: ServiceClient, socket_path: Path, failures: list[str]
) -> None:
    """Health/ready/metrics/watch checks plus the p99 SLO gate (warm daemon)."""
    health = client.health()
    if not health.get("healthy"):
        failures.append(f"warm daemon reports unhealthy: {health}")
    if not client.ready():
        failures.append("warm daemon not ready after restart")

    metrics = client.metrics()
    for section in ("counters", "process_counters", "gauges", "histograms"):
        if section not in metrics:
            failures.append(f"metrics snapshot missing section {section!r}")
    text = client.metrics_text()
    if "repro_serve_decisions_total" not in text:
        failures.append("Prometheus exposition lacks repro_serve_decisions_total")

    histogram = metrics.get("histograms", {}).get("serve.session_decide")
    if not histogram or not histogram.get("count"):
        failures.append(
            "no serve.session_decide histogram samples on the warm daemon"
        )
    else:
        ceiling = p99_ceiling_ms()
        p99 = histogram["p99_ms"]
        if p99 is None or p99 > ceiling:
            failures.append(
                f"SLO breach: warm session-decision p99 {p99}ms exceeds "
                f"the {ceiling}ms ceiling ({histogram['count']} samples)"
            )
        else:
            print(
                f"SLO gate: warm session-decision p99 {p99}ms <= "
                f"{ceiling}ms ceiling ({histogram['count']} samples)"
            )

    watch = subprocess.run(
        [sys.executable, "-m", "repro.obs", "watch", str(socket_path), "--once"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if watch.returncode != 0:
        failures.append(
            f"repro.obs watch --once exited {watch.returncode}: "
            f"{watch.stdout}{watch.stderr}"
        )
    elif "repro.serve" not in watch.stdout:
        failures.append("watch frame does not render the daemon header")
    else:
        print("watch --once rendered a frame against the live socket")


def _check_metrics_stream(metrics_path: Path, failures: list[str]) -> None:
    """The flusher stream must be schema-valid and carry snapshots."""
    import json

    from repro.obs.schema import validate_stream

    if not metrics_path.exists():
        failures.append("warm daemon wrote no metrics-snapshot JSONL")
        return
    problems = validate_stream(metrics_path)
    if problems:
        failures.extend(f"metrics stream: {problem}" for problem in problems)
    snapshots = 0
    with open(metrics_path, encoding="utf-8") as stream:
        for line in stream:
            if line.strip() and json.loads(line).get("event") == "metrics_snapshot":
                snapshots += 1
    if snapshots == 0:
        failures.append("metrics stream carries no metrics_snapshot events")
    else:
        print(
            f"metrics flusher: {snapshots} schema-valid snapshot(s) "
            f"in {metrics_path.name}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiers",
        type=int,
        nargs=2,
        default=(2, 2),
        metavar=("FRONT", "BACK"),
        help="tiered-system shape (default 2 2)",
    )
    parser.add_argument(
        "--keep",
        type=Path,
        default=None,
        metavar="DIR",
        help="run inside DIR and keep it (default: fresh temp dir)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    shm_before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()

    with tempfile.TemporaryDirectory() as scratch:
        workdir = args.keep or Path(scratch)
        workdir.mkdir(parents=True, exist_ok=True)
        model_path = workdir / "model.npz"
        socket_path = workdir / "serve.sock"
        bounds_path = workdir / "bounds.npz"

        system = build_tiered_system(tuple(args.tiers), backend="sparse")
        save_recovery_model(model_path, system.model)

        # -- cold run: refine concurrently, then SIGTERM mid-replay --------
        daemon = _start_daemon(model_path, socket_path, bounds_path)
        try:
            _drive_refining_sessions(socket_path, failures)
            with ServiceClient(str(socket_path), timeout=120.0) as client:
                stats = client.stats()
                if stats["started_warm"]:
                    failures.append("first launch reported a warm start")
                print(
                    f"cold daemon: {stats['decisions']} decisions, "
                    f"{stats['bound_vectors']} bound vectors after "
                    f"{CONCURRENT_SESSIONS} concurrent sessions"
                )

                fired = threading.Event()

                def fire_sigterm(step: int) -> None:
                    # Mid-session: the replay session is open and half
                    # driven when the signal lands; the remaining steps go
                    # through the draining daemon.
                    if step >= SIGTERM_AFTER and not fired.is_set():
                        fired.set()
                        daemon.send_signal(signal.SIGTERM)

                reference = _replay(client, "replay", on_step=fire_sigterm)
                if not fired.is_set():  # replay terminated before the mark
                    daemon.send_signal(signal.SIGTERM)
            returncode = daemon.wait(timeout=120)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        print(
            f"SIGTERM at replay step {SIGTERM_AFTER}: daemon exited "
            f"{returncode}; {len(reference)} reference decisions recorded"
        )
        if returncode != 0:
            failures.append(f"daemon exited {returncode} after SIGTERM drain")
        if socket_path.exists():
            failures.append("socket file survived shutdown")
        if not bounds_path.exists():
            failures.append("no bound-set checkpoint written on SIGTERM")

        # -- warm restart: same observations must give same decisions ------
        metrics_path = workdir / "metrics.jsonl"
        if bounds_path.exists():
            daemon = _start_daemon(
                model_path,
                socket_path,
                bounds_path,
                extra=[
                    "--metrics-jsonl",
                    str(metrics_path),
                    "--metrics-interval",
                    "0.5",
                ],
            )
            try:
                with ServiceClient(str(socket_path), timeout=120.0) as client:
                    stats = client.stats()
                    if not stats["started_warm"]:
                        failures.append("restart did not warm-start from checkpoint")
                    print(
                        f"warm daemon: started_warm={stats['started_warm']}, "
                        f"{stats['bound_vectors']} bound vectors, "
                        f"startup {stats['startup_seconds']:.3f}s"
                    )
                    resumed = _replay(client, "replay")
                    _check_live_ops(client, socket_path, failures)
                    client.shutdown()
                returncode = daemon.wait(timeout=120)
            finally:
                if daemon.poll() is None:
                    daemon.kill()
                    daemon.wait()
            if returncode != 0:
                failures.append(f"daemon exited {returncode} after shutdown op")
            if resumed != reference:
                failures.append(
                    f"decision drift after restart: {resumed} != {reference}"
                )
            else:
                print(f"replay identical across restart ({len(resumed)} decisions)")
            _check_metrics_stream(metrics_path, failures)

        if socket_path.exists():
            failures.append("socket file survived final shutdown")
        leftovers = sorted(str(p) for p in workdir.rglob(f"*{TEMP_SUFFIX}"))
        if leftovers:
            failures.append(f"leftover temp files: {leftovers}")

    if os.path.isdir("/dev/shm"):
        leaked = set(os.listdir("/dev/shm")) - shm_before
        if leaked:
            failures.append(f"leaked /dev/shm entries: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "serve contract holds: graceful drain on SIGTERM, warm restart "
        "from checkpoint, decisions bit-identical, live ops answering, "
        "p99 within SLO, no leaks"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
