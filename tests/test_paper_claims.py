"""The paper's numbered claims, each checked in its literal form.

One test per formal statement (Lemma 3.1, Theorem 3.1, Property 1, the
Section 3.1 comparison claims, Section 4.1's discardability remark), so a
reader can map the paper's theory onto executable evidence line by line.
Statement-level duplicates of behaviours exercised elsewhere are
intentional: these tests are organised by *claim*, not by module.
"""

import numpy as np
import pytest

from repro.bounds.incremental import refine_at, sample_reachable_beliefs
from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bounded import BoundedController
from repro.pomdp.belief import belief_bellman_backup
from repro.pomdp.belief_mdp import expand_belief_mdp
from repro.pomdp.exact import solve_exact
from repro.sim.campaign import run_campaign
from repro.systems.faults import FaultKind
from repro.systems.simple import build_simple_system


class ZeroLeaf:
    """v_p^0 = 0, the induction basis of Lemma 3.1."""

    def value(self, belief):
        return 0.0

    def value_batch(self, beliefs):
        return np.zeros(np.atleast_2d(beliefs).shape[0])


class TestLemma31:
    """Lemma 3.1: V_p^-(pi) <= lim_k (L_p^k 0)(pi).

    The horizon-k reachable-belief MDP with the zero leaf computes exactly
    the k-th iterate v_p^k = L_p^k 0 at its interior beliefs, so the
    RA-Bound must sit below it for every k (the iterates decrease toward
    the value function from above under Condition 2, and the lemma's
    in-the-limit statement implies the per-iterate one for non-positive
    models).
    """

    @pytest.mark.parametrize("horizon", [1, 2, 3])
    def test_ra_bound_below_every_iterate(self, simple_system, horizon):
        pomdp = simple_system.model.pomdp
        ra = ra_bound_vector(pomdp)
        initial = simple_system.model.initial_belief()
        belief_mdp = expand_belief_mdp(pomdp, initial, horizon=horizon)
        # L_p^k 0 via k synchronous sweeps from the zero leaf.
        values = ZeroLeaf().value_batch(belief_mdp.beliefs)
        for _ in range(horizon):
            updated = values.copy()
            for node in np.flatnonzero(~belief_mdp.frontier):
                best = -np.inf
                rewards = belief_mdp.beliefs[node] @ pomdp.rewards.T
                for action, branch in enumerate(belief_mdp.successors[node]):
                    total = rewards[action]
                    for probability, child in branch:
                        total += pomdp.discount * probability * values[child]
                    best = max(best, total)
                updated[node] = best
            values = updated
        for node in np.flatnonzero(~belief_mdp.frontier):
            ra_value = float(belief_mdp.beliefs[node] @ ra)
            assert ra_value <= values[node] + 1e-9


class TestTheorem31:
    """Theorem 3.1: V_p^-(pi) <= V_p*(pi) for all pi.

    Checked against Monahan ground truth on the discounted example and
    against deep lower-bound iterates on the undiscounted one (where the
    exact value is uncomputable, any valid improvement of the bound must
    still respect the ordering).
    """

    def test_against_exact_value_discounted(self):
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        ra = ra_bound_vector(pomdp)
        exact = solve_exact(pomdp, tol=1e-6)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=128):
            assert float(belief @ ra) <= exact.value(belief) + 2e-6

    def test_undiscounted_bound_consistency(self, simple_system):
        """Refinement (valid lower bounds, monotone) never crosses below
        the RA-Bound hyperplane — the seed stays a supporting plane."""
        pomdp = simple_system.model.pomdp
        ra = ra_bound_vector(pomdp)
        bound_set = BoundVectorSet(ra)
        beliefs = sample_reachable_beliefs(
            pomdp, simple_system.model.initial_belief(), depth=2,
            max_beliefs=32,
        )
        for belief in beliefs:
            refine_at(pomdp, bound_set, belief)
        for belief in beliefs:
            assert bound_set.value(belief) >= float(belief @ ra) - 1e-9


class TestProperty1:
    """Property 1: finite termination under (a) no free actions and
    (b) V_B^- <= L_p V_B^-."""

    def test_condition_b_for_ra_only_set(self, emn_system):
        """'Condition (b) can be shown to hold if the RA-Bound is the only
        bound vector present in B.'"""
        pomdp = emn_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        beliefs = sample_reachable_beliefs(
            pomdp, emn_system.model.initial_belief(), depth=1, max_beliefs=16
        )
        for belief in beliefs:
            current = bound_set.value(belief)
            backed_up = belief_bellman_backup(pomdp, belief, bound_set.value)
            assert current <= backed_up + 1e-8

    def test_finite_termination_over_many_episodes(self, emn_system):
        """'The recovery controller always terminates after executing a
        finite number of actions' — every episode ends by choice of a_T,
        well inside the safety cap."""
        controller = BoundedController(
            emn_system.model, depth=1, refine_min_improvement=1.0
        )
        result = run_campaign(
            controller,
            fault_states=emn_system.fault_states(FaultKind.ZOMBIE),
            injections=50,
            seed=31,
            monitor_tail=5.0,
            max_steps=400,
        )
        assert all(episode.terminated for episode in result.episodes)
        assert max(episode.steps for episode in result.episodes) < 100


class TestSection31Comparison:
    """'The RA-Bound is the only lower bound we are aware of that
    converges to a finite value' (for recovery-notification models)."""

    def test_only_ra_converges_with_notification(self, simple_notified_system):
        from repro.bounds.bi_pomdp import bi_pomdp_vector
        from repro.bounds.blind_policy import blind_policy_vectors
        from repro.exceptions import DivergenceError

        pomdp = simple_notified_system.model.pomdp
        assert np.all(np.isfinite(ra_bound_vector(pomdp)))
        with pytest.raises(DivergenceError):
            bi_pomdp_vector(pomdp)
        assert blind_policy_vectors(pomdp, skip_divergent=True) == {}


class TestSection41Discardability:
    """'Using incremental update doesn't hurt, because any additional bound
    hyperplanes that are not better in at least some regions of the
    probability simplex can be discarded.'"""

    def test_pruning_preserves_the_refined_bound(self, simple_system):
        pomdp = simple_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        beliefs = sample_reachable_beliefs(
            pomdp, simple_system.model.initial_belief(), depth=2,
            max_beliefs=24,
        )
        for belief in beliefs:
            refine_at(pomdp, bound_set, belief)
        values_before = [bound_set.value(belief) for belief in beliefs]
        bound_set.prune("lp")
        values_after = [bound_set.value(belief) for belief in beliefs]
        assert np.allclose(values_before, values_after, atol=1e-8)


class TestShippedModelsAreDiagnosticClean:
    """The analyzer's preconditions (Conditions 1 and 2, the Figure 2
    augmentations, Eq. 5 finiteness) hold for every system the repo ships;
    a regression in any builder shows up here as a named diagnostic."""

    @staticmethod
    def _assert_clean(report, n_states, n_actions, n_observations):
        assert not report.errors, report.format()
        assert not report.warnings, report.format()
        assert report.codes == ("R201", "R202")
        (stats,) = report.by_code("R201")
        assert f"|S|={n_states}," in stats.message
        assert f"|A|={n_actions}," in stats.message
        assert f"|O|={n_observations}," in stats.message

    def test_emn(self, emn_system):
        from repro.analysis import analyze

        self._assert_clean(analyze(emn_system.model), 15, 10, 128)

    def test_simple(self, simple_system):
        from repro.analysis import analyze

        self._assert_clean(analyze(simple_system.model), 4, 4, 3)

    def test_simple_notified(self, simple_notified_system):
        from repro.analysis import analyze

        report = analyze(simple_notified_system.model)
        assert not report.errors, report.format()
        assert not report.warnings, report.format()

    def test_tiered(self):
        from repro.analysis import analyze
        from repro.systems.tiered import build_tiered_system

        system = build_tiered_system()
        self._assert_clean(analyze(system.model), 14, 8, 16)
