"""Smoke tests for the example scripts (the fast ones).

Examples are documentation that must not rot: each test runs a script in a
subprocess exactly as a user would and checks for its signature output.
The long-running campaign examples are exercised with reduced arguments.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_paper_worked_example(self):
        out = run_example("paper_worked_example.py")
        assert "RA-Bound on the Figure 2(a)" in out
        assert "BI-POMDP bound: DIVERGES" in out
        assert "chosen action becomes restart" in out

    def test_bounds_improvement(self):
        out = run_example("bounds_improvement.py")
        assert "RA-Bound (this paper)" in out
        assert "Bootstrapping phase" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Bounded controller over" in out
        assert "Early terminations: 0" in out

    def test_compare_controllers_small(self):
        out = run_example("compare_controllers.py", "10")
        assert "most likely" in out
        assert "oracle" in out

    @pytest.mark.slow
    def test_custom_system(self):
        out = run_example("custom_system.py")
        assert "Recovery notification detected: False" in out
        assert "custom payment service" in out
