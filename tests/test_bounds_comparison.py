"""Section 3.1's bound comparison: BI-POMDP and blind-policy behaviour."""

import numpy as np
import pytest

from repro.bounds.bi_pomdp import bi_pomdp_bound, bi_pomdp_vector
from repro.bounds.blind_policy import blind_policy_bound, blind_policy_vectors
from repro.bounds.ra_bound import ra_bound_vector
from repro.exceptions import DivergenceError
from repro.pomdp.exact import solve_exact
from repro.systems.simple import build_simple_system


class TestBIPOMDP:
    def test_diverges_without_notification(self, simple_system):
        with pytest.raises(DivergenceError):
            bi_pomdp_vector(simple_system.model.pomdp)

    def test_diverges_with_notification(self, simple_notified_system):
        with pytest.raises(DivergenceError):
            bi_pomdp_vector(simple_notified_system.model.pomdp)

    def test_converges_when_discounted_and_lower_bounds_value(self):
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        vector = bi_pomdp_vector(pomdp)
        solution = solve_exact(pomdp, tol=1e-6)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=32):
            assert float(belief @ vector) <= solution.value(belief) + 1e-6

    def test_looser_than_ra_bound_when_both_exist(self):
        """Worst action <= random action, state-wise."""
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        bi = bi_pomdp_vector(pomdp)
        ra = ra_bound_vector(pomdp)
        assert np.all(bi <= ra + 1e-9)

    def test_bound_wrapper(self):
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        belief = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
        assert bi_pomdp_bound(pomdp, belief) <= 0.0


class TestBlindPolicy:
    def test_all_policies_diverge_with_notification(self, simple_notified_system):
        """No single recovery action progresses in all states (Section 3.1)."""
        vectors = blind_policy_vectors(
            simple_notified_system.model.pomdp, skip_divergent=True
        )
        # restart(a) loops forever in fault(b) and vice versa; observe loops
        # everywhere outside null.  Every blind policy accrues infinite cost.
        assert vectors == {}
        with pytest.raises(DivergenceError):
            blind_policy_bound(
                simple_notified_system.model.pomdp,
                np.array([1 / 4, 1 / 4, 1 / 4, 1 / 4])[: simple_notified_system.model.pomdp.n_states],
            )

    def test_raises_on_first_divergent_when_not_skipping(
        self, simple_notified_system
    ):
        with pytest.raises(DivergenceError, match="blind policy"):
            blind_policy_vectors(
                simple_notified_system.model.pomdp, skip_divergent=False
            )

    def test_terminate_action_makes_bound_finite(self, simple_system):
        """Figure 2(b) augmentation: a_T's blind value is the term. reward."""
        model = simple_system.model
        vectors = blind_policy_vectors(model.pomdp, skip_divergent=True)
        assert model.terminate_action in vectors
        expected = model.pomdp.rewards[model.terminate_action]
        assert np.allclose(vectors[model.terminate_action], expected)

    def test_finite_bound_below_ra_refinable_region(self, simple_system):
        """At the uniform belief the blind bound exists and is a lower bound."""
        pomdp = simple_system.model.pomdp
        belief = np.full(pomdp.n_states, 1.0 / pomdp.n_states)
        value = blind_policy_bound(pomdp, belief)
        assert np.isfinite(value)
        assert value <= 0.0

    def test_discounted_all_policies_finite(self):
        system = build_simple_system(recovery_notification=False, discount=0.85)
        vectors = blind_policy_vectors(system.model.pomdp)
        assert len(vectors) == system.model.pomdp.n_actions
