"""Tests for the two-server Figure 1(a) example system."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.systems.simple import (
    FAULT_RATE,
    RESTART_COST,
    WRONG_RESTART_COST,
    build_simple_system,
)


class TestStructure:
    def test_unnotified_shapes(self, simple_system):
        pomdp = simple_system.model.pomdp
        assert pomdp.n_states == 4  # null, fault(a), fault(b), s_T
        assert pomdp.n_actions == 4  # restart(a), restart(b), observe, a_T

    def test_notified_shapes(self, simple_notified_system):
        pomdp = simple_notified_system.model.pomdp
        assert pomdp.n_states == 3
        assert pomdp.n_actions == 3
        assert simple_notified_system.model.recovery_notification


class TestFigureAnnotations:
    """The (probability, reward) annotations of Figures 1(a) and 2(b)."""

    def test_correct_restart(self, simple_system):
        pomdp = simple_system.model.pomdp
        a = pomdp.action_index("restart(a)")
        fault_a = simple_system.fault_a
        assert pomdp.transitions[a, fault_a, simple_system.null_state] == 1.0
        assert np.isclose(pomdp.rewards[a, fault_a], -RESTART_COST)

    def test_wrong_restart(self, simple_system):
        pomdp = simple_system.model.pomdp
        b = pomdp.action_index("restart(b)")
        fault_a = simple_system.fault_a
        assert pomdp.transitions[b, fault_a, fault_a] == 1.0
        assert np.isclose(pomdp.rewards[b, fault_a], -WRONG_RESTART_COST)

    def test_restart_in_null(self, simple_system):
        pomdp = simple_system.model.pomdp
        a = pomdp.action_index("restart(a)")
        assert np.isclose(
            pomdp.rewards[a, simple_system.null_state], -RESTART_COST
        )

    def test_observe_costs_fault_rate(self, simple_system):
        pomdp = simple_system.model.pomdp
        observe = simple_system.observe_action
        assert np.isclose(
            pomdp.rewards[observe, simple_system.fault_a], -FAULT_RATE
        )
        assert pomdp.rewards[observe, simple_system.null_state] == 0.0

    def test_termination_reward_is_rate_times_top(self):
        system = build_simple_system(
            recovery_notification=False, operator_response_time=4.0
        )
        pomdp = system.model.pomdp
        a_t = system.model.terminate_action
        # Figure 2(b): aT annotated (0.25, -0.5 * t_op).
        assert np.isclose(pomdp.rewards[a_t, system.fault_a], -0.5 * 4.0)


class TestObservationModel:
    def test_localization_probabilities(self, simple_system):
        pomdp = simple_system.model.pomdp
        observe = simple_system.observe_action
        row = pomdp.observations[observe, simple_system.fault_a]
        looks_a = pomdp.observation_index("looks(a)")
        looks_b = pomdp.observation_index("looks(b)")
        clear = pomdp.observation_index("clear")
        assert row[looks_a] > row[looks_b]
        assert np.isclose(row.sum(), 1.0)
        assert row[clear] > 0  # intermittent symptoms (no notification)

    def test_notified_variant_never_clears_in_fault(self, simple_notified_system):
        pomdp = simple_notified_system.model.pomdp
        clear = pomdp.observation_index("clear")
        fault_a = simple_notified_system.fault_a
        assert pomdp.observations[0, fault_a, clear] == 0.0


class TestParameterValidation:
    def test_notified_with_miss_rate_rejected(self):
        with pytest.raises(ModelError, match="miss_rate"):
            build_simple_system(recovery_notification=True, miss_rate=0.2)

    def test_unnotified_needs_positive_miss_rate(self):
        with pytest.raises(ModelError, match="intermittent"):
            build_simple_system(recovery_notification=False, miss_rate=0.0)

    def test_invalid_localization_rejected(self):
        with pytest.raises(ModelError, match="localization"):
            build_simple_system(localization=1.5)

    def test_discount_passes_through(self, simple_discounted_system):
        assert simple_discounted_system.model.pomdp.discount == 0.9
