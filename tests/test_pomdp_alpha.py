"""Tests for alpha-vector utilities (evaluation, pruning, cross-sums)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pomdp import alpha


class TestEvaluate:
    def test_max_over_vectors(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert alpha.evaluate(vectors, np.array([0.7, 0.3])) == 0.7

    def test_batch_matches_scalar(self):
        vectors = np.array([[1.0, -1.0], [-1.0, 1.0], [0.2, 0.2]])
        beliefs = np.array([[0.5, 0.5], [0.9, 0.1], [0.0, 1.0]])
        batch = alpha.evaluate_batch(vectors, beliefs)
        singles = [alpha.evaluate(vectors, b) for b in beliefs]
        assert np.allclose(batch, singles)

    def test_argmax_vector(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert alpha.argmax_vector(vectors, np.array([0.1, 0.9])) == 1


class TestPointwiseDominance:
    def test_dominated(self):
        vectors = np.array([[1.0, 1.0]])
        assert alpha.pointwise_dominated(np.array([0.5, 0.5]), vectors)

    def test_not_dominated_when_crossing(self):
        vectors = np.array([[1.0, 0.0]])
        assert not alpha.pointwise_dominated(np.array([0.0, 1.0]), vectors)

    def test_empty_set(self):
        assert not alpha.pointwise_dominated(
            np.array([0.0]), np.empty((0, 1))
        )

    def test_prune_removes_duplicates(self):
        vectors = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        pruned = alpha.prune_pointwise(vectors)
        assert pruned.shape[0] == 2

    def test_prune_keeps_crossing_vectors(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.4, 0.4]])
        pruned = alpha.prune_pointwise(vectors)
        # [0.4, 0.4] crosses neither: it is dominated by neither alone but
        # useless only under LP pruning; pointwise keeps it.
        assert pruned.shape[0] == 3


class TestWitnessLP:
    def test_useful_vector_has_witness(self):
        vectors = np.array([[1.0, 0.0]])
        witness = alpha.witness_belief(np.array([0.0, 1.0]), vectors)
        assert witness is not None
        assert witness[1] > 0.5  # the witness leans on state 1

    def test_dominated_vector_has_no_witness(self):
        vectors = np.array([[1.0, 1.0]])
        assert alpha.witness_belief(np.array([0.0, 0.5]), vectors) is None

    def test_lp_prunes_interior_vector(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.4, 0.4]])
        pruned = alpha.prune_lp(vectors)
        # max(pi, 1-pi) >= 0.5 > 0.4 everywhere: the flat vector is useless.
        assert pruned.shape[0] == 2

    def test_lp_keeps_vector_useful_in_a_region(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.6, 0.6]])
        pruned = alpha.prune_lp(vectors)
        assert pruned.shape[0] == 3

    def test_lp_on_identical_vectors_keeps_one(self):
        vectors = np.array([[0.5, 0.5], [0.5, 0.5]])
        pruned = alpha.prune_lp(vectors)
        assert pruned.shape[0] == 1


class TestCrossSum:
    def test_all_pairs(self):
        left = np.array([[1.0], [2.0]])
        right = np.array([[10.0], [20.0], [30.0]])
        combined = alpha.cross_sum(left, right)
        assert sorted(combined.ravel().tolist()) == [11, 12, 21, 22, 31, 32]

    def test_empty_operands(self):
        left = np.empty((0, 2))
        right = np.array([[1.0, 2.0]])
        assert np.array_equal(alpha.cross_sum(left, right), right)
        assert np.array_equal(alpha.cross_sum(right, left), right)


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_pruning_preserves_value_function(seed, n_states, n_vectors):
    """Pruned sets must induce exactly the same PWLC value function."""
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n_vectors, n_states))
    pruned = alpha.prune_lp(vectors)
    beliefs = rng.dirichlet(np.ones(n_states), size=32)
    for belief in beliefs:
        assert np.isclose(
            alpha.evaluate(vectors, belief),
            alpha.evaluate(pruned, belief),
            atol=1e-7,
        )


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_pointwise_prune_never_lowers_value(seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(6, 3))
    pruned = alpha.prune_pointwise(vectors)
    beliefs = rng.dirichlet(np.ones(3), size=16)
    for belief in beliefs:
        assert alpha.evaluate(pruned, belief) >= alpha.evaluate(
            vectors, belief
        ) - 1e-9
