"""Sparse-native analyzer passes: dense<->sparse parity, R203 semantics.

The v2 analyzer reimplements every R0xx/R1xx pass directly on the CSR
containers.  These tests pin the two guarantees that refactor made:

* **parity** — the same model analyzed through the dense arrays and
  through ``sparsify_*`` conversions yields the same diagnostic set
  (compared as ``(code, states, actions)`` triples; message wording may
  differ between backends);
* **R203 semantics** — the remaining genuine size cutoffs report which
  pass hit them, the threshold constant and value, and are overridable
  with ``analyze(..., force=True)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.passes as passes
from repro.analysis import ModelView, analyze
from repro.linalg.backends import (
    sparsify_observations,
    sparsify_rewards,
    sparsify_transitions,
)


def _dense_view(transitions, observations, rewards, **extra) -> ModelView:
    return ModelView(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        **extra,
    )


def _sparse_view(transitions, observations, rewards, **extra) -> ModelView:
    return ModelView(
        transitions=sparsify_transitions(transitions),
        observations=(
            None if observations is None else sparsify_observations(observations)
        ),
        rewards=sparsify_rewards(rewards),
        **extra,
    )


def _triples(report):
    return sorted(
        (d.code, d.states, d.actions)
        for d in report.findings
        if d.code not in ("R201",)  # stats text differs (density formatting)
    )


@st.composite
def stochastic_models(draw):
    """Random *valid-stochastic* models, with optional recovery metadata.

    Rows are normalized Dirichlet draws, so R001/R002 never fire and the
    lossless ``sparsify_*`` conversions represent the exact same model on
    both backends.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_states = draw(st.integers(min_value=2, max_value=6))
    n_actions = draw(st.integers(min_value=1, max_value=4))
    n_observations = draw(st.integers(min_value=1, max_value=3))
    with_nulls = draw(st.booleans())
    duplicate_action = draw(st.booleans()) and n_actions >= 2
    rng = np.random.default_rng(seed)
    transitions = rng.dirichlet(np.ones(n_states), size=(n_actions, n_states))
    observations = rng.dirichlet(
        np.ones(n_observations), size=(n_actions, n_states)
    )
    rewards = -rng.uniform(0.1, 2.0, size=(n_actions, n_states))
    if duplicate_action:
        # Exact structural duplicate: both backends must report it.
        transitions[1] = transitions[0]
        observations[1] = observations[0]
        rewards[1] = rewards[0]
    extra = {}
    if with_nulls:
        null_states = np.zeros(n_states, dtype=bool)
        null_states[0] = True
        extra = dict(
            null_states=null_states,
            rate_rewards=np.append(0.0, -np.ones(n_states - 1)),
            recovery_notification=False,
        )
    return transitions, observations, rewards, extra


class TestDenseSparseParity:
    @settings(max_examples=60, deadline=None)
    @given(stochastic_models())
    def test_same_diagnostic_triples(self, drawn):
        transitions, observations, rewards, extra = drawn
        dense = analyze(_dense_view(transitions, observations, rewards, **extra))
        sparse = analyze(
            _sparse_view(transitions, observations, rewards, **extra)
        )
        assert _triples(dense) == _triples(sparse)
        assert dense.exit_code == sparse.exit_code

    def test_parity_on_broken_stochasticity(self):
        """Non-distribution rows fire R001 on both backends."""
        transitions = np.zeros((2, 3, 3))
        transitions[0] = np.eye(3)
        transitions[1] = np.eye(3)
        transitions[1, 2] = [0.5, 0.0, 0.0]  # sums to 0.5
        rewards = -np.ones((2, 3))
        dense = analyze(_dense_view(transitions, None, rewards))
        sparse = analyze(
            ModelView(
                transitions=sparsify_transitions(transitions),
                rewards=sparsify_rewards(rewards),
            )
        )
        assert any(d.code == "R001" for d in dense.findings)
        assert any(d.code == "R001" for d in sparse.findings)
        # Both name the offending (state, action) pair.
        dense_hits = {
            (d.states, d.actions) for d in dense.findings if d.code == "R001"
        }
        sparse_hits = {
            (d.states, d.actions) for d in sparse.findings if d.code == "R001"
        }
        assert (("s2",), ("a1",)) in dense_hits
        assert (("s2",), ("a1",)) in sparse_hits


def _duplicate_model():
    """3 actions: a0 == a2 exactly, a1 dominates a copy of itself (a0)."""
    rng = np.random.default_rng(7)
    transitions = rng.dirichlet(np.ones(4), size=(3, 4))
    transitions[2] = transitions[0]
    observations = rng.dirichlet(np.ones(2), size=(3, 4))
    observations[2] = observations[0]
    rewards = -rng.uniform(0.5, 1.5, size=(3, 4))
    rewards[2] = rewards[0]
    return transitions, observations, rewards


class TestSparseDuplicates:
    def test_exact_duplicate_found_without_pairwise_sweep(self):
        transitions, observations, rewards, = _duplicate_model()
        report = analyze(_sparse_view(transitions, observations, rewards))
        dups = [d for d in report.findings if d.code == "R102"]
        assert len(dups) == 1
        assert dups[0].actions == ("a0", "a2")

    def test_dominated_action_found(self):
        transitions, observations, rewards = _duplicate_model()
        rewards = rewards.copy()
        rewards[2] = rewards[0] - 0.5  # a2 costs strictly more everywhere
        report = analyze(_sparse_view(transitions, observations, rewards))
        dominated = [d for d in report.findings if d.code == "R103"]
        assert len(dominated) == 1
        assert dominated[0].actions == ("a2", "a0")  # (dominated, dominating)

    def test_different_observations_block_duplicate(self):
        transitions, observations, rewards = _duplicate_model()
        observations = observations.copy()
        observations[2] = np.roll(observations[2], 1, axis=1)
        report = analyze(_sparse_view(transitions, observations, rewards))
        assert not any(d.code in ("R102", "R103") for d in report.findings)


class TestR203Semantics:
    def test_duplicate_budget_cutoff_names_pass_and_threshold(self, monkeypatch):
        monkeypatch.setattr(passes, "DUPLICATE_PAIR_BUDGET", 0)
        transitions, observations, rewards = _duplicate_model()
        view = _sparse_view(transitions, observations, rewards)
        report = analyze(view)
        skips = [d for d in report.findings if d.code == "R203"]
        assert len(skips) == 1
        assert "duplicate-action (R102/R103)" in skips[0].message
        assert "DUPLICATE_PAIR_BUDGET=0" in skips[0].message
        assert "--force" in skips[0].fix_hint
        # The gated pass's findings are absent...
        assert not any(d.code == "R102" for d in report.findings)

    def test_force_overrides_duplicate_budget(self, monkeypatch):
        monkeypatch.setattr(passes, "DUPLICATE_PAIR_BUDGET", 0)
        transitions, observations, rewards = _duplicate_model()
        view = _sparse_view(transitions, observations, rewards)
        report = analyze(view, force=True)
        assert not any(d.code == "R203" for d in report.findings)
        assert any(d.code == "R102" for d in report.findings)

    def test_solve_cutoff_gates_r105_only(self, monkeypatch):
        monkeypatch.setattr(passes, "SPARSE_SOLVE_SKIP_STATES", 1)
        transitions, observations, rewards = _duplicate_model()
        view = _sparse_view(transitions, observations, rewards)
        report = analyze(view)
        skips = [d for d in report.findings if d.code == "R203"]
        assert len(skips) == 1
        assert "slow-absorption (R105)" in skips[0].message
        assert "SPARSE_SOLVE_SKIP_STATES=1" in skips[0].message
        forced = analyze(view, force=True)
        assert not any(d.code == "R203" for d in forced.findings)

    def test_dense_models_never_hit_cutoffs(self, monkeypatch):
        monkeypatch.setattr(passes, "DUPLICATE_PAIR_BUDGET", 0)
        monkeypatch.setattr(passes, "SPARSE_SOLVE_SKIP_STATES", 1)
        monkeypatch.setattr(passes, "PER_STATE_SCAN_CUTOFF", 0)
        transitions, observations, rewards = _duplicate_model()
        report = analyze(_dense_view(transitions, observations, rewards))
        assert not any(d.code == "R203" for d in report.findings)


class TestTieredSparseInstance:
    """The acceptance instance at test scale: full pass set, zero R203."""

    @pytest.fixture(scope="class")
    def tiered_report(self):
        from repro.systems.tiered import build_tiered_system

        system = build_tiered_system(replicas=(200, 200, 200), backend="sparse")
        return analyze(system.model)

    def test_no_size_skips(self, tiered_report):
        assert not any(d.code == "R203" for d in tiered_report.findings)

    def test_no_errors(self, tiered_report):
        assert not tiered_report.has_errors

    def test_scc_and_stats_present(self, tiered_report):
        codes = {d.code for d in tiered_report.findings}
        assert "R201" in codes and "R202" in codes
