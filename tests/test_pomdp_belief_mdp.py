"""Tests for the reachable belief-state MDP solver."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.pomdp.belief_mdp import expand_belief_mdp, solve_belief_mdp
from repro.pomdp.exact import solve_exact
from repro.pomdp.tree import expand_tree
from repro.systems.simple import build_simple_system


class TestExpansion:
    def test_initial_belief_is_row_zero(self, simple_system):
        initial = simple_system.model.initial_belief()
        belief_mdp = expand_belief_mdp(
            simple_system.model.pomdp, initial, horizon=2
        )
        assert np.allclose(belief_mdp.beliefs[0], initial)
        assert not belief_mdp.frontier[0]

    def test_horizon_zero_is_all_frontier(self, simple_system):
        belief_mdp = expand_belief_mdp(
            simple_system.model.pomdp,
            simple_system.model.initial_belief(),
            horizon=0,
        )
        assert belief_mdp.n_beliefs == 1
        assert belief_mdp.frontier.all()

    def test_negative_horizon_rejected(self, simple_system):
        with pytest.raises(ModelError):
            expand_belief_mdp(
                simple_system.model.pomdp,
                simple_system.model.initial_belief(),
                horizon=-1,
            )

    def test_max_beliefs_respected(self, emn_system):
        belief_mdp = expand_belief_mdp(
            emn_system.model.pomdp,
            emn_system.model.initial_belief(),
            horizon=3,
            max_beliefs=30,
        )
        assert belief_mdp.n_beliefs <= 30

    def test_interior_branches_are_distributions(self, simple_system):
        belief_mdp = expand_belief_mdp(
            simple_system.model.pomdp,
            simple_system.model.initial_belief(),
            horizon=2,
        )
        for node in np.flatnonzero(~belief_mdp.frontier):
            for branch in belief_mdp.successors[node]:
                total = sum(probability for probability, _ in branch)
                assert np.isclose(total, 1.0, atol=1e-9)

    def test_beliefs_deduplicated(self, simple_system):
        belief_mdp = expand_belief_mdp(
            simple_system.model.pomdp,
            simple_system.model.initial_belief(),
            horizon=3,
        )
        rounded = {tuple(np.round(b, 10)) for b in belief_mdp.beliefs}
        assert len(rounded) == belief_mdp.n_beliefs


class TestSolve:
    def test_value_at_least_leaf_bound(self, simple_system):
        pomdp = simple_system.model.pomdp
        leaf = BoundVectorSet(ra_bound_vector(pomdp))
        belief_mdp = expand_belief_mdp(
            pomdp, simple_system.model.initial_belief(), horizon=3
        )
        values = solve_belief_mdp(belief_mdp, leaf)
        leaf_values = leaf.value_batch(belief_mdp.beliefs)
        assert np.all(values >= leaf_values - 1e-9)

    def test_matches_tree_at_depth_one_horizon_one(self, simple_system):
        """Horizon-1 belief MDP with a lower-bound leaf equals the depth-1
        tree value at the root."""
        pomdp = simple_system.model.pomdp
        leaf = BoundVectorSet(ra_bound_vector(pomdp))
        initial = simple_system.model.initial_belief()
        belief_mdp = expand_belief_mdp(pomdp, initial, horizon=1)
        values = solve_belief_mdp(belief_mdp, leaf, max_iterations=1)
        tree = expand_tree(pomdp, initial, depth=1, leaf=leaf)
        assert values[0] >= tree.value - 1e-9

    def test_stays_below_exact_value_discounted(self):
        system = build_simple_system(recovery_notification=False, discount=0.85)
        pomdp = system.model.pomdp
        exact = solve_exact(pomdp, tol=1e-6)
        leaf = BoundVectorSet(ra_bound_vector(pomdp))
        belief_mdp = expand_belief_mdp(
            pomdp, system.model.initial_belief(), horizon=3
        )
        values = solve_belief_mdp(belief_mdp, leaf)
        for node in range(belief_mdp.n_beliefs):
            assert (
                values[node]
                <= exact.value(belief_mdp.beliefs[node])
                + exact.error_bound
                + 1e-7
            )

    def test_deeper_horizon_tightens_root_value(self, simple_system):
        pomdp = simple_system.model.pomdp
        leaf = BoundVectorSet(ra_bound_vector(pomdp))
        initial = simple_system.model.initial_belief()
        shallow = solve_belief_mdp(
            expand_belief_mdp(pomdp, initial, horizon=1), leaf
        )[0]
        deep = solve_belief_mdp(
            expand_belief_mdp(pomdp, initial, horizon=3), leaf
        )[0]
        assert deep >= shallow - 1e-9
