"""Smoke tests for the experiments CLI and the markdown report module."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import fig5_markdown, table1_markdown
from repro.experiments.table1 import run_table1


class TestCLI:
    def test_bounds_command(self, capsys):
        main(["bounds"])
        out = capsys.readouterr().out
        assert "RA-Bound" in out
        assert "DIVERGES" in out

    def test_fig5a_command(self, capsys):
        main(["fig5a", "--iterations", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "Claim checks" in out

    def test_fig5b_command(self, capsys):
        main(["fig5b", "--iterations", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert "Figure 5(b)" in out

    def test_table1_command_skip_depth3(self, capsys):
        main(["table1", "--injections", "5", "--seed", "1", "--skip-depth3"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "heuristic (depth 3)" not in out
        assert "bounded (depth 1)" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_table1_parallel_flag(self, capsys):
        main([
            "table1", "--injections", "6", "--seed", "1", "--skip-depth3",
            "--parallel", "2",
        ])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "bounded (depth 1)" in out

    def test_profile_flag_appends_stats(self, capsys):
        main(["--profile", "fig5b", "--iterations", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert "Figure 5(b)" in out
        # cProfile's cumulative-time report follows the experiment output.
        assert "cumulative" in out
        assert "function calls" in out


class TestReportMarkdown:
    @pytest.fixture(scope="class")
    def fig5_result(self):
        return run_fig5(iterations=3, seed=0)

    @pytest.fixture(scope="class")
    def table1_result(self):
        return run_table1(
            injections=5,
            seed=0,
            controllers=("most likely", "bounded (depth 1)", "oracle"),
        )

    def test_fig5_markdown_structure(self, fig5_result):
        text = fig5_markdown(fig5_result)
        assert text.startswith("| Iteration |")
        assert "RA-Bound" in text
        assert "Shape claims" in text

    def test_table1_markdown_structure(self, table1_result):
        text = table1_markdown(table1_result)
        assert "paper / ours" in text
        assert "most likely" in text
        assert "Qualitative claims" in text
        # Oracle's missing paper algorithm time renders as a dash.
        assert "- /" in text
