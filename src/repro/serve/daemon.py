"""Unix-socket daemon and supervisor loop for the policy service.

:class:`PolicyDaemon` wraps one :class:`~repro.serve.service.PolicyService`
in a threaded ``socketserver`` unix-stream server and the process-level
machinery around it: signal-driven graceful shutdown (SIGTERM/SIGINT →
drain live sessions → final checkpoint → unlink the socket), an interval
checkpoint thread, and a supervisor ``run()`` loop that blocks until
shutdown completes.

Each client connection is handled by its own thread reading line-delimited
JSON requests (:mod:`repro.serve.protocol`).  Sessions a connection opened
and never closed are released when the connection drops, so a crashed
client cannot pin the live-session gauge (or block drain) forever.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socketserver
import threading

from repro.serve.protocol import encode_response, handle_line
from repro.serve.service import PolicyService

__all__ = ["PolicyDaemon"]


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request line → response line."""

    def handle(self) -> None:
        daemon: PolicyDaemon = self.server.daemon  # type: ignore[attr-defined]
        opened: set[str] = set()
        try:
            for line in self.rfile:
                if not line.strip():
                    continue
                response = handle_line(daemon.service, line, opened)
                self.wfile.write(encode_response(response))
                self.wfile.flush()
                if response.get("draining") and response.get("ok"):
                    daemon.request_shutdown()
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            for session_id in opened:
                with contextlib.suppress(Exception):
                    daemon.service.close_session(session_id)


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class PolicyDaemon:
    """Serve a :class:`PolicyService` on a unix socket until shutdown.

    Args:
        service: the warmed-up service to expose.
        socket_path: overrides ``service.config.socket_path``.
    """

    def __init__(self, service: PolicyService, socket_path: str | None = None):
        self.service = service
        self.socket_path = (
            service.config.socket_path if socket_path is None else socket_path
        )
        self._shutdown = threading.Event()
        self._server: _Server | None = None
        self._checkpointer: threading.Thread | None = None

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent; safe from any thread)."""
        self._shutdown.set()

    def _handle_signal(self, signum, frame) -> None:
        self.request_shutdown()

    def _checkpoint_loop(self) -> None:
        interval = self.service.config.checkpoint_interval
        while not self._shutdown.wait(interval):
            with contextlib.suppress(Exception):
                self.service.checkpoint()

    def _bind(self) -> _Server:
        # A previous unclean exit can leave a stale socket file; binding
        # over it requires the unlink (connect() to it would have failed,
        # so nothing live is displaced).
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        server = _Server(self.socket_path, _ConnectionHandler)
        server.daemon = self  # type: ignore[attr-defined]
        return server

    def run(self, install_signals: bool = True) -> int:
        """Supervisor loop: serve until shutdown, then drain and persist.

        Returns the number of sessions still live when the drain timed
        out — 0 is the graceful exit code the smoke check asserts.
        """
        self._server = self._bind()
        if install_signals:
            signal.signal(signal.SIGTERM, self._handle_signal)
            signal.signal(signal.SIGINT, self._handle_signal)
        server_thread = threading.Thread(
            target=self._server.serve_forever, name="serve-accept", daemon=True
        )
        server_thread.start()
        if self.service.config.checkpoint_interval > 0:
            self._checkpointer = threading.Thread(
                target=self._checkpoint_loop, name="serve-checkpoint", daemon=True
            )
            self._checkpointer.start()
        try:
            self._shutdown.wait()
        finally:
            stragglers = self._teardown(server_thread)
        return stragglers

    def _teardown(self, server_thread: threading.Thread) -> int:
        """Drain, final-checkpoint, stop accepting, remove the socket."""
        self._shutdown.set()
        # Refuse new sessions first, then give in-flight recoveries their
        # drain budget before the final checkpoint freezes the bound set.
        stragglers = self.service.drain()
        with contextlib.suppress(Exception):
            self.service.checkpoint()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        server_thread.join(timeout=5.0)
        if self._checkpointer is not None:
            self._checkpointer.join(timeout=5.0)
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        return stragglers
