"""The POMDP model type.

A POMDP extends an MDP with a finite observation set ``O`` and an
observation function ``q(o|s, a)``: the probability of observing ``o`` when
the system *arrives* in state ``s`` as a result of action ``a`` (Section 2).
In the recovery setting, observations are the joint outputs of the system's
monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.mdp.model import MDP, _check_unique, _default_labels
from repro.util.validation import check_stochastic_matrix


@dataclass(frozen=True)
class POMDP:
    """A finite POMDP with dense arrays.

    Attributes:
        transitions: ``(|A|, |S|, |S|)`` array; ``transitions[a, s, s']`` is
            ``p(s'|s, a)``.
        observations: ``(|A|, |S|, |O|)`` array; ``observations[a, s', o]``
            is ``q(o|s', a)`` — note the state index is the *arrival* state.
        rewards: ``(|A|, |S|)`` array; ``rewards[a, s]`` is ``r(s, a)``.
        state_labels / action_labels / observation_labels: display names.
        discount: ``beta``; recovery models use 1.0 (undiscounted).
    """

    transitions: np.ndarray
    observations: np.ndarray
    rewards: np.ndarray
    state_labels: tuple[str, ...] = ()
    action_labels: tuple[str, ...] = ()
    observation_labels: tuple[str, ...] = ()
    discount: float = 1.0
    _state_index: dict = field(init=False, repr=False, compare=False, default=None)
    _action_index: dict = field(init=False, repr=False, compare=False, default=None)
    _observation_index: dict = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self):
        transitions = np.asarray(self.transitions, dtype=float)
        observations = np.asarray(self.observations, dtype=float)
        rewards = np.asarray(self.rewards, dtype=float)
        if transitions.ndim != 3 or transitions.shape[1] != transitions.shape[2]:
            raise ModelError(
                f"transitions must have shape (|A|, |S|, |S|), got {transitions.shape}"
            )
        n_actions, n_states, _ = transitions.shape
        if observations.ndim != 3 or observations.shape[:2] != (n_actions, n_states):
            raise ModelError(
                "observations must have shape (|A|, |S|, |O|) = "
                f"({n_actions}, {n_states}, ...), got {observations.shape}"
            )
        n_observations = observations.shape[2]
        if n_observations == 0:
            raise ModelError("a POMDP needs at least one observation")
        if rewards.shape != (n_actions, n_states):
            raise ModelError(
                f"rewards must have shape ({n_actions}, {n_states}), "
                f"got {rewards.shape}"
            )
        for a in range(n_actions):
            check_stochastic_matrix(transitions[a], name=f"transitions[{a}]")
            check_stochastic_matrix(observations[a], name=f"observations[{a}]")
        if not 0.0 <= self.discount <= 1.0:
            raise ModelError(f"discount must be in [0, 1], got {self.discount}")

        state_labels = tuple(self.state_labels) or _default_labels("s", n_states)
        action_labels = tuple(self.action_labels) or _default_labels("a", n_actions)
        observation_labels = tuple(self.observation_labels) or _default_labels(
            "o", n_observations
        )
        for labels, count, kind in (
            (state_labels, n_states, "state"),
            (action_labels, n_actions, "action"),
            (observation_labels, n_observations, "observation"),
        ):
            if len(labels) != count:
                raise ModelError(f"{len(labels)} {kind} labels for {count} {kind}s")
            _check_unique(labels, kind)

        object.__setattr__(self, "transitions", transitions)
        object.__setattr__(self, "observations", observations)
        object.__setattr__(self, "rewards", rewards)
        object.__setattr__(self, "state_labels", state_labels)
        object.__setattr__(self, "action_labels", action_labels)
        object.__setattr__(self, "observation_labels", observation_labels)
        object.__setattr__(
            self, "_state_index", {s: i for i, s in enumerate(state_labels)}
        )
        object.__setattr__(
            self, "_action_index", {a: i for i, a in enumerate(action_labels)}
        )
        object.__setattr__(
            self,
            "_observation_index",
            {o: i for i, o in enumerate(observation_labels)},
        )

    @property
    def n_states(self) -> int:
        """Number of states ``|S|``."""
        return self.transitions.shape[1]

    @property
    def n_actions(self) -> int:
        """Number of actions ``|A|``."""
        return self.transitions.shape[0]

    @property
    def n_observations(self) -> int:
        """Number of observations ``|O|``."""
        return self.observations.shape[2]

    def state_index(self, label: str) -> int:
        """Index of the state labelled ``label``."""
        return self._state_index[label]

    def action_index(self, label: str) -> int:
        """Index of the action labelled ``label``."""
        return self._action_index[label]

    def observation_index(self, label: str) -> int:
        """Index of the observation labelled ``label``."""
        return self._observation_index[label]

    def to_mdp(self) -> MDP:
        """The underlying fully-observable MDP ``(S, A, p, r)``.

        This is the exponentially smaller model on which the RA-Bound is
        computed (Section 3.1) and on which the oracle controller operates.
        """
        return MDP(
            transitions=self.transitions,
            rewards=self.rewards,
            state_labels=self.state_labels,
            action_labels=self.action_labels,
            discount=self.discount,
        )

    def with_discount(self, discount: float) -> "POMDP":
        """A copy of this POMDP with a different discount factor."""
        return POMDP(
            transitions=self.transitions,
            observations=self.observations,
            rewards=self.rewards,
            state_labels=self.state_labels,
            action_labels=self.action_labels,
            observation_labels=self.observation_labels,
            discount=discount,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"POMDP(|S|={self.n_states}, |A|={self.n_actions}, "
            f"|O|={self.n_observations}, discount={self.discount})"
        )
