"""Incremental linear-function bound refinement (Section 4.1, Eqs. 6-7).

The RA-Bound ignores the observation function, so it can be loose.
Hauskrecht's incremental linear-function method creates, from an existing
set of bounding hyperplanes ``B``, one new hyperplane that improves the
bound at a chosen belief ``pi``:

* for each action ``a`` and observation ``o``, pick the existing vector
  ``b^{pi,a,o}`` that is best at the *posterior* mass
  ``m_{a,o}(s') = sum_s p(s', o | s, a) pi(s)``;
* back those choices up through the model to form one candidate ``b_a`` per
  action (Eq. 7);
* keep the candidate that is best at ``pi``.

Because the backup is one application of the POMDP operator ``L_p`` to a
valid lower bound, the candidate is itself a valid lower bound, and the set
keeps the invariant ``V_B^- <= L_p V_B^-`` needed by Property 1(b).  The
paper proves convergence of the procedure only for discounted models and
verifies improvement experimentally for the undiscounted recovery case
(Figure 5(a)); :func:`verify_lower_bound_invariant` makes that experimental
check available as a library call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounds.vector_set import BoundVectorSet
from repro.linalg.ops import (
    BACKUP_TIE_EPSILON,
    observation_matrix_dense,
    predict,
    reward_row,
    tie_break_argmax,
    transition_matvec,
)
from repro.obs.telemetry import active as telemetry_active
from repro.pomdp.belief import GAMMA_EPSILON, belief_bellman_backup
from repro.pomdp.cache import get_joint_cache
from repro.pomdp.model import POMDP

__all__ = [
    "BACKUP_TIE_EPSILON",  # canonical home is repro.linalg.ops
    "RefinementResult",
    "incremental_update",
    "refine_at",
    "sample_reachable_beliefs",
    "verify_lower_bound_invariant",
]


def _first_within(scores: np.ndarray) -> int:
    """Lowest index whose score is within the tie tolerance of the max."""
    return int(tie_break_argmax(scores, BACKUP_TIE_EPSILON))


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of one incremental update at a belief.

    Attributes:
        vector: the new bounding hyperplane (Eq. 7's ``b``).
        action: the action whose backup produced it.
        improvement: ``pi . b - V_B^-(pi)`` before insertion (>= 0).
        added: whether the vector was actually inserted into the set.
    """

    vector: np.ndarray
    action: int
    improvement: float
    added: bool


def incremental_update(
    pomdp: POMDP, vectors: np.ndarray, belief: np.ndarray
) -> tuple[np.ndarray, int]:
    """Compute Eq. 7's new hyperplane from the stack ``vectors`` at ``belief``.

    Returns ``(b, action)`` where ``b`` is the candidate hyperplane and
    ``action`` the maximising action.  Pure function: nothing is inserted.
    """
    belief = np.asarray(belief, dtype=float)
    candidates = np.empty((pomdp.n_actions, pomdp.n_states))
    # mass[a, s', o] = sum_s pi(s) p(s'|s,a) q(o|s',a) — one matrix product
    # via the shared joint-factor cache when the model is cacheable.
    cache = get_joint_cache(pomdp)
    mass_all = cache.joint_all(belief) if cache is not None else None
    for action in range(pomdp.n_actions):
        if mass_all is not None:
            mass = mass_all[action]
        else:
            predicted = predict(pomdp.transitions, belief, action)  # (|S'|,)
            mass = predicted[:, None] * observation_matrix_dense(
                pomdp.observations, action
            )
        # For each observation pick the existing hyperplane best at `mass`
        # (ties toward the lowest vector index, shared tolerance).
        scores = vectors @ mass  # (|B|, |O|)
        chosen = tie_break_argmax(scores, BACKUP_TIE_EPSILON)  # (|O|,)
        selected = vectors[chosen]  # (|O|, |S'|)
        # x(s') = sum_o q(o|s',a) * selected[o, s']
        backup = (
            observation_matrix_dense(pomdp.observations, action) * selected.T
        ).sum(axis=1)
        candidates[action] = reward_row(pomdp.rewards, action) + pomdp.discount * (
            transition_matvec(pomdp.transitions, action, backup)
        )
    best_action = _first_within(candidates @ belief)
    return candidates[best_action], best_action


def refine_at(
    pomdp: POMDP,
    bound_set: BoundVectorSet,
    belief: np.ndarray,
    min_improvement: float = 0.0,
) -> RefinementResult:
    """Run one incremental update at ``belief`` and insert the result.

    The vector is inserted only when it improves the bound at ``belief`` by
    more than ``min_improvement`` and is not pointwise-dominated (per
    :meth:`BoundVectorSet.add`); the paper notes non-improving hyperplanes
    "can be discarded".
    """
    belief = np.asarray(belief, dtype=float)
    telemetry = telemetry_active()
    if telemetry is not None:
        with (
            telemetry.trace_span("bounds.refine", category="bounds"),
            telemetry.span("bounds.refine"),
        ):
            vector, action = incremental_update(pomdp, bound_set.vectors, belief)
    else:
        vector, action = incremental_update(pomdp, bound_set.vectors, belief)
    improvement = bound_set.improvement_at(vector, belief)
    added = bound_set.add(vector, belief=belief, min_improvement=min_improvement)
    if telemetry is not None:
        telemetry.count("bounds.refinements")
        if added:
            telemetry.count("bounds.refinements_accepted")
        # Convergence extras (repro.obs.convergence): the bound value at the
        # visited belief after insertion, the registry-relative wall-clock
        # stamp (outside the determinism contract), and the set's cumulative
        # dominated/evicted totals.
        telemetry.event(
            "refine",
            action=int(action),
            added=added,
            improvement=float(max(improvement, 0.0)),
            set_size=len(bound_set),
            value=float(np.max(bound_set.vectors @ belief)),
            t=round(telemetry.elapsed(), 9),
            dominated=int(getattr(bound_set, "dominated", 0)),
            evicted=int(bound_set.evictions),
        )
    return RefinementResult(
        vector=vector, action=action, improvement=max(improvement, 0.0), added=added
    )


def verify_lower_bound_invariant(
    pomdp: POMDP,
    bound_set: BoundVectorSet,
    beliefs: np.ndarray,
    tol: float = 1e-8,
) -> bool:
    """Empirically check Property 1(b): ``V_B^-(pi) <= L_p V_B^-(pi)``.

    Evaluates the invariant at every row of ``beliefs``.  This is the
    condition that, together with the no-free-actions condition (Property
    1(a)), guarantees the bounded controller terminates after finitely many
    actions.  The check is exact at the tested beliefs (not a proof over the
    whole simplex, which the paper leaves to future work).
    """
    beliefs = np.atleast_2d(np.asarray(beliefs, dtype=float))
    # Intentionally row-wise: each belief's backup builds its own posterior
    # enumeration, and the check is a diagnostic, not a decision-time path.
    for belief in beliefs:  # codelint: ignore[R904]
        current = float(np.max(bound_set.vectors @ belief))
        backed_up = belief_bellman_backup(
            pomdp, belief, lambda next_belief: float(
                np.max(bound_set.vectors @ next_belief)
            )
        )
        if current > backed_up + tol:
            return False
    return True


def sample_reachable_beliefs(
    pomdp: POMDP,
    initial: np.ndarray,
    depth: int,
    max_beliefs: int = 512,
) -> np.ndarray:
    """Breadth-first enumeration of beliefs reachable from ``initial``.

    Used by invariant checks and by tests to exercise the bound over the
    countable reachable belief set (Section 2 observes reachability is
    countable even though the simplex is not).
    """
    frontier = [np.asarray(initial, dtype=float)]
    seen = [frontier[0]]
    for _ in range(depth):
        next_frontier = []
        for belief in frontier:
            for action in range(pomdp.n_actions):
                predicted = predict(pomdp.transitions, belief, action)
                joint = predicted[:, None] * observation_matrix_dense(
                    pomdp.observations, action
                )
                gamma = joint.sum(axis=0)
                for observation in np.flatnonzero(gamma > GAMMA_EPSILON):
                    posterior = joint[:, observation] / gamma[observation]
                    if not any(
                        np.allclose(posterior, known, atol=1e-12) for known in seen
                    ):
                        seen.append(posterior)
                        next_frontier.append(posterior)
                        if len(seen) >= max_beliefs:
                            return np.array(seen)
        frontier = next_frontier
        if not frontier:
            break
    return np.array(seen)
