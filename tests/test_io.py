"""Tests for model and bound-set serialization."""

import numpy as np
import pytest

from repro.bounds.ra_bound import ra_bound_vector
from repro.bounds.vector_set import BoundVectorSet
from repro.exceptions import ModelError
from repro.io import (
    load_bound_set,
    load_pomdp,
    load_recovery_model,
    save_bound_set,
    save_pomdp,
    save_recovery_model,
)
from tests.test_pomdp_model import tiny_pomdp


class TestPOMDPRoundTrip:
    def test_arrays_and_labels_survive(self, tmp_path):
        original = tiny_pomdp(discount=0.9)
        path = tmp_path / "model.npz"
        save_pomdp(path, original)
        loaded = load_pomdp(path)
        assert np.array_equal(loaded.transitions, original.transitions)
        assert np.array_equal(loaded.observations, original.observations)
        assert np.array_equal(loaded.rewards, original.rewards)
        assert loaded.state_labels == original.state_labels
        assert loaded.action_labels == original.action_labels
        assert loaded.observation_labels == original.observation_labels
        assert loaded.discount == original.discount

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bounds.npz"
        save_bound_set(path, BoundVectorSet(np.array([-1.0, 0.0])))
        with pytest.raises(ModelError, match="expected pomdp"):
            load_pomdp(path)


class TestRecoveryModelRoundTrip:
    def test_unnotified_model(self, tmp_path, simple_system):
        path = tmp_path / "recovery.npz"
        save_recovery_model(path, simple_system.model)
        loaded = load_recovery_model(path)
        original = simple_system.model
        assert loaded.terminate_state == original.terminate_state
        assert loaded.terminate_action == original.terminate_action
        assert loaded.operator_response_time == original.operator_response_time
        assert np.array_equal(loaded.null_states, original.null_states)
        assert np.array_equal(loaded.durations, original.durations)
        assert np.array_equal(
            loaded.passive_actions, original.passive_actions
        )
        assert np.array_equal(
            loaded.pomdp.rewards, original.pomdp.rewards
        )

    def test_notified_model(self, tmp_path, simple_notified_system):
        path = tmp_path / "recovery.npz"
        save_recovery_model(path, simple_notified_system.model)
        loaded = load_recovery_model(path)
        assert loaded.recovery_notification
        assert loaded.terminate_state is None
        assert loaded.operator_response_time is None

    def test_emn_round_trip_preserves_behaviour(self, tmp_path, emn_system):
        """The reloaded model must produce the identical RA-Bound."""
        path = tmp_path / "emn.npz"
        save_recovery_model(path, emn_system.model)
        loaded = load_recovery_model(path)
        assert np.allclose(
            ra_bound_vector(loaded.pomdp),
            ra_bound_vector(emn_system.model.pomdp),
        )


class TestBoundSetRoundTrip:
    def test_vectors_usage_and_pinning_survive(self, tmp_path):
        bound_set = BoundVectorSet(np.array([-2.0, -3.0]), max_vectors=5)
        bound_set.add(np.array([-1.0, -4.0]))
        bound_set.value(np.array([1.0, 0.0]))  # bump a usage counter
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path)
        assert np.array_equal(loaded.vectors, bound_set.vectors)
        assert np.array_equal(loaded._usage, bound_set._usage)
        assert loaded._pinned == bound_set._pinned
        assert loaded.max_vectors == 5

    def test_unlimited_storage_round_trip(self, tmp_path):
        bound_set = BoundVectorSet(np.array([-1.0, -1.0]))
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        assert load_bound_set(path).max_vectors is None

    def test_loaded_set_evaluates_identically(self, tmp_path, simple_system):
        pomdp = simple_system.model.pomdp
        bound_set = BoundVectorSet(ra_bound_vector(pomdp))
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path)
        rng = np.random.default_rng(0)
        for belief in rng.dirichlet(np.ones(pomdp.n_states), size=16):
            assert np.isclose(loaded.value(belief), bound_set.value(belief))


# -- v2 format: sparse backends, atomic writes, path normalization ----------

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import TEMP_SUFFIX, archive_path
from repro.linalg.backends import (
    densify_observations,
    densify_rewards,
    densify_transitions,
    sparsify_observations,
    sparsify_rewards,
    sparsify_transitions,
)
from repro.recovery.model import RecoveryModel, convert_backend
from tests.conftest import random_pomdp

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _sparse_twin(pomdp):
    """The same POMDP with all three tensors in the sparse containers."""
    from repro.pomdp.model import POMDP

    return POMDP(
        transitions=sparsify_transitions(pomdp.transitions),
        observations=sparsify_observations(pomdp.observations),
        rewards=sparsify_rewards(pomdp.rewards),
        state_labels=pomdp.state_labels,
        action_labels=pomdp.action_labels,
        observation_labels=pomdp.observation_labels,
        discount=pomdp.discount,
    )


def _pomdp_digest(pomdp) -> str:
    """Backend-independent content fingerprint of a POMDP's tensors."""
    digest = hashlib.sha256()
    if pomdp.backend.is_sparse:
        tensors = (
            densify_transitions(pomdp.transitions),
            densify_observations(pomdp.observations),
            densify_rewards(pomdp.rewards),
        )
    else:
        tensors = (pomdp.transitions, pomdp.observations, pomdp.rewards)
    for tensor in tensors:
        digest.update(np.ascontiguousarray(tensor, dtype=np.float64).tobytes())
    digest.update(repr(pomdp.state_labels).encode())
    digest.update(repr(pomdp.discount).encode())
    return digest.hexdigest()


def _random_recovery_model(rng, sparse: bool) -> RecoveryModel:
    """A random (notification-style) recovery model for property tests."""
    pomdp = random_pomdp(rng)
    if sparse:
        pomdp = _sparse_twin(pomdp)
    null_states = np.zeros(pomdp.n_states, dtype=bool)
    null_states[int(rng.integers(pomdp.n_states))] = True
    return RecoveryModel(
        pomdp=pomdp,
        null_states=null_states,
        rate_rewards=-rng.uniform(0.0, 2.0, size=pomdp.n_states),
        durations=rng.uniform(0.0, 5.0, size=pomdp.n_actions),
        passive_actions=rng.integers(0, 2, size=pomdp.n_actions).astype(bool),
        recovery_notification=True,
    )


class TestPathNormalization:
    """save_*("foo") writes foo.npz; load_*("foo") must find it again."""

    def test_suffixless_pomdp_round_trip(self, tmp_path):
        pomdp = tiny_pomdp(discount=0.9)
        save_pomdp(tmp_path / "model", pomdp)
        assert (tmp_path / "model.npz").exists()
        loaded = load_pomdp(tmp_path / "model")
        assert np.array_equal(loaded.transitions, pomdp.transitions)

    def test_suffixless_recovery_model(self, tmp_path, simple_system):
        save_recovery_model(tmp_path / "recovery", simple_system.model)
        loaded = load_recovery_model(tmp_path / "recovery")
        assert loaded.terminate_state == simple_system.model.terminate_state

    def test_suffixless_bound_set(self, tmp_path):
        save_bound_set(tmp_path / "bounds", BoundVectorSet(np.array([-1.0])))
        assert len(load_bound_set(tmp_path / "bounds")) == 1

    def test_dotted_names_keep_their_npz_suffix(self, tmp_path):
        assert archive_path(tmp_path / "v1.2").name == "v1.2.npz"
        assert archive_path(tmp_path / "v1.2.npz").name == "v1.2.npz"


class TestSparseArchives:
    """v2 stores CSR/rank-one components natively — never densified."""

    def test_sparse_pomdp_round_trips_bit_identically(self, tmp_path):
        pomdp = _sparse_twin(random_pomdp(np.random.default_rng(3)))
        path = tmp_path / "sparse.npz"
        save_pomdp(path, pomdp)
        loaded = load_pomdp(path)
        assert loaded.backend.is_sparse
        original = pomdp.transitions
        restored = loaded.transitions
        assert np.array_equal(restored.base.data, original.base.data)
        assert np.array_equal(restored.base.indices, original.base.indices)
        assert np.array_equal(restored.base.indptr, original.base.indptr)
        assert _pomdp_digest(loaded) == _pomdp_digest(pomdp)

    def test_archive_holds_no_object_arrays(self, tmp_path):
        """The v1 failure mode: containers pickled as object arrays."""
        pomdp = _sparse_twin(random_pomdp(np.random.default_rng(4)))
        path = tmp_path / "sparse.npz"
        save_pomdp(path, pomdp)
        with np.load(path, allow_pickle=False) as archive:
            for name in archive.files:
                assert archive[name].dtype != object

    def test_sparse_emn_recovery_model_behaviour(self, tmp_path, emn_system):
        sparse_model = convert_backend(emn_system.model, "sparse")
        path = tmp_path / "emn_sparse.npz"
        save_recovery_model(path, sparse_model)
        loaded = load_recovery_model(path)
        assert loaded.pomdp.backend.is_sparse
        assert np.allclose(
            ra_bound_vector(loaded.pomdp),
            ra_bound_vector(emn_system.model.pomdp),
        )

    def test_observation_overrides_survive(self, tmp_path, emn_system):
        sparse_model = convert_backend(emn_system.model, "sparse")
        path = tmp_path / "emn_sparse.npz"
        save_recovery_model(path, sparse_model)
        loaded = load_recovery_model(path)
        original = sparse_model.pomdp.observations
        restored = loaded.pomdp.observations
        assert sorted(restored.overrides) == sorted(original.overrides)
        for action in original.overrides:
            assert np.array_equal(
                restored.overrides[action].data,
                original.overrides[action].data,
            )


class TestV1Compatibility:
    """Archives written before the backend key stay readable."""

    def _write_v1(self, path, pomdp) -> None:
        with open(path, "wb") as stream:
            np.savez_compressed(
                stream,
                kind=np.array("pomdp"),
                version=np.array(1),
                transitions=pomdp.transitions,
                observations=pomdp.observations,
                rewards=pomdp.rewards,
                state_labels=np.array(list(pomdp.state_labels), dtype=np.str_),
                action_labels=np.array(
                    list(pomdp.action_labels), dtype=np.str_
                ),
                observation_labels=np.array(
                    list(pomdp.observation_labels), dtype=np.str_
                ),
                discount=np.array(pomdp.discount),
            )

    def test_v1_pomdp_loads(self, tmp_path):
        pomdp = tiny_pomdp(discount=0.9)
        path = tmp_path / "v1.npz"
        self._write_v1(path, pomdp)
        loaded = load_pomdp(path)
        assert np.array_equal(loaded.transitions, pomdp.transitions)
        assert loaded.state_labels == pomdp.state_labels

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        with open(path, "wb") as stream:
            np.savez_compressed(
                stream, kind=np.array("pomdp"), version=np.array(99)
            )
        with pytest.raises(ModelError, match="archive format 99"):
            load_pomdp(path)


class TestAtomicWrites:
    """A crash mid-write must never corrupt a previously saved archive."""

    def _crashing_savez(self, monkeypatch, error):
        real = np.savez_compressed

        def partial_write(stream, **arrays):
            del arrays
            stream.write(b"PK\x03\x04 truncated archive")
            raise error

        monkeypatch.setattr(np, "savez_compressed", partial_write)
        return real

    def test_prior_archive_survives_crash(self, tmp_path, monkeypatch):
        path = tmp_path / "bounds.npz"
        good = BoundVectorSet(np.array([-2.0, -3.0]))
        save_bound_set(path, good)
        self._crashing_savez(monkeypatch, RuntimeError("disk full"))
        with pytest.raises(RuntimeError, match="disk full"):
            save_bound_set(path, BoundVectorSet(np.array([-9.0, -9.0])))
        monkeypatch.undo()
        assert np.array_equal(load_bound_set(path).vectors, good.vectors)
        assert list(tmp_path.glob(f"*{TEMP_SUFFIX}")) == []

    def test_interrupt_leaves_no_temp_files(self, tmp_path, monkeypatch):
        self._crashing_savez(monkeypatch, KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            save_bound_set(
                tmp_path / "bounds.npz", BoundVectorSet(np.array([-1.0]))
            )
        assert list(tmp_path.iterdir()) == []

    def test_model_save_is_atomic_too(self, tmp_path, monkeypatch, simple_system):
        path = tmp_path / "recovery.npz"
        save_recovery_model(path, simple_system.model)
        before = path.read_bytes()
        self._crashing_savez(monkeypatch, RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            save_recovery_model(path, simple_system.model)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert list(tmp_path.glob(f"*{TEMP_SUFFIX}")) == []


class TestHypothesisRoundTrips:
    """Property: every archive kind round-trips content-identically on
    both backends (the fingerprint the grid checkpoints relies on)."""

    @given(SEEDS, st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_pomdp_round_trip(self, tmp_path_factory, seed, sparse):
        rng = np.random.default_rng(seed)
        pomdp = random_pomdp(rng)
        if sparse:
            pomdp = _sparse_twin(pomdp)
        directory = tmp_path_factory.mktemp("pomdp")
        path = directory / "model.npz"
        save_pomdp(path, pomdp)
        loaded = load_pomdp(path)
        assert loaded.backend.is_sparse == sparse
        assert _pomdp_digest(loaded) == _pomdp_digest(pomdp)

    @given(SEEDS, st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_recovery_model_round_trip(self, tmp_path_factory, seed, sparse):
        rng = np.random.default_rng(seed)
        model = _random_recovery_model(rng, sparse=sparse)
        directory = tmp_path_factory.mktemp("recovery")
        path = directory / "model.npz"
        save_recovery_model(path, model)
        loaded = load_recovery_model(path)
        assert loaded.pomdp.backend.is_sparse == sparse
        assert _pomdp_digest(loaded.pomdp) == _pomdp_digest(model.pomdp)
        assert np.array_equal(loaded.null_states, model.null_states)
        assert np.array_equal(loaded.rate_rewards, model.rate_rewards)
        assert np.array_equal(loaded.durations, model.durations)
        assert np.array_equal(loaded.passive_actions, model.passive_actions)

    @given(SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_bound_set_round_trip(self, tmp_path_factory, seed):
        rng = np.random.default_rng(seed)
        vectors = -rng.uniform(0.0, 10.0, size=(int(rng.integers(1, 6)), 4))
        bound_set = BoundVectorSet(vectors)
        directory = tmp_path_factory.mktemp("bounds")
        path = directory / "bounds.npz"
        save_bound_set(path, bound_set)
        loaded = load_bound_set(path)
        assert loaded.vectors.tobytes() == bound_set.vectors.tobytes()


# -- certification memoisation (the .cert.json sidecar) ---------------------

import json

from repro.exceptions import AnalysisError
from repro.io import certificate_path, model_fingerprint
from repro.obs.telemetry import Telemetry, activated


class TestCertificationCache:
    def _save(self, tmp_path, system):
        bound_set = BoundVectorSet(ra_bound_vector(system.model.pomdp))
        path = tmp_path / "bounds.npz"
        save_bound_set(path, bound_set)
        return path, bound_set

    def test_first_load_writes_sidecar(self, tmp_path, simple_system):
        path, _ = self._save(tmp_path, simple_system)
        sidecar = certificate_path(path)
        assert not sidecar.exists()
        load_bound_set(path, model=simple_system.model)
        assert sidecar.exists()
        record = json.loads(sidecar.read_text())
        assert record["schema"] == "repro-cert/v1"
        assert record["model_sha256"] == model_fingerprint(simple_system.model)

    def test_second_load_skips_certification(self, tmp_path, simple_system):
        path, _ = self._save(tmp_path, simple_system)
        telemetry = Telemetry()
        with activated(telemetry):
            load_bound_set(path, model=simple_system.model)
            load_bound_set(path, model=simple_system.model)
        assert telemetry.process_counters["io.certify_runs"] == 1
        assert telemetry.process_counters["io.certify_skipped"] == 1

    def test_recertify_forces_the_sweep(self, tmp_path, simple_system):
        path, _ = self._save(tmp_path, simple_system)
        telemetry = Telemetry()
        with activated(telemetry):
            load_bound_set(path, model=simple_system.model)
            load_bound_set(path, model=simple_system.model, recertify=True)
        assert telemetry.process_counters["io.certify_runs"] == 2

    def test_archive_change_invalidates_sidecar(self, tmp_path, simple_system):
        path, bound_set = self._save(tmp_path, simple_system)
        load_bound_set(path, model=simple_system.model)
        # Bump a usage counter: same (sound) vectors, different archive bytes.
        bound_set.value(np.ones(bound_set.vectors.shape[1]) / bound_set.vectors.shape[1])
        save_bound_set(path, bound_set)  # new content digest
        telemetry = Telemetry()
        with activated(telemetry):
            load_bound_set(path, model=simple_system.model)
        assert telemetry.process_counters["io.certify_runs"] == 1

    def test_model_change_invalidates_sidecar(
        self, tmp_path, simple_system, simple_discounted_system
    ):
        path, _ = self._save(tmp_path, simple_system)
        load_bound_set(path, model=simple_system.model)
        telemetry = Telemetry()
        with activated(telemetry):
            # Same archive, different model: the memo must not apply (and
            # certification itself still runs — the RA-Bound of the
            # undiscounted model is sound for the discounted one too).
            load_bound_set(path, model=simple_discounted_system.model)
        assert telemetry.process_counters["io.certify_runs"] == 1

    def test_corrupt_sidecar_recertifies(self, tmp_path, simple_system):
        path, _ = self._save(tmp_path, simple_system)
        load_bound_set(path, model=simple_system.model)
        certificate_path(path).write_text("{not json")
        telemetry = Telemetry()
        with activated(telemetry):
            load_bound_set(path, model=simple_system.model)
        assert telemetry.process_counters["io.certify_runs"] == 1

    def test_unsound_archive_still_raises(self, tmp_path, simple_system):
        """A failing certification is never memoised."""
        pomdp = simple_system.model.pomdp
        bad = BoundVectorSet(np.full(pomdp.n_states, 1e6))
        path = tmp_path / "bad.npz"
        save_bound_set(path, bad)
        with pytest.raises(AnalysisError):
            load_bound_set(path, model=simple_system.model)
        assert not certificate_path(path).exists()
        with pytest.raises(AnalysisError):
            load_bound_set(path, model=simple_system.model)

    def test_no_model_no_sidecar(self, tmp_path, simple_system):
        path, _ = self._save(tmp_path, simple_system)
        load_bound_set(path)
        assert not certificate_path(path).exists()

    def test_fingerprint_is_stable_and_model_sensitive(
        self, simple_system, simple_discounted_system
    ):
        left = model_fingerprint(simple_system.model)
        assert left == model_fingerprint(simple_system.model)
        assert left != model_fingerprint(simple_discounted_system.model)
