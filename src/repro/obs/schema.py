"""The JSONL event schema of the observability layer.

Every line of a telemetry run file is one JSON object with at least:

* ``event`` — the event kind (a key of :data:`EVENT_FIELDS`);
* ``seq`` — a per-file monotonically increasing integer.

plus the kind's required fields listed in :data:`EVENT_FIELDS` and any
number of optional extras (``chunk``, wall-clock ``seconds``, ...).  The
schema is deliberately flat — no nesting except the ``summary`` payload
and the ``span`` event's ``args`` object — so streams can be processed
with nothing fancier than ``json.loads`` per line.  :func:`validate_stream`
is what the CI smoke job runs against the telemetry artifacts.

Schema history:

* ``repro-obs/v1`` — counters/gauges/timers summary, campaign and
  refinement events.
* ``repro-obs/v2`` — adds the ``span`` event kind: hierarchical
  trace spans (``span_id``/``parent_id`` form the call tree) emitted just
  before the ``summary`` when tracing is on, and enriches ``refine``
  events with convergence extras (``value``, ``t``, cumulative
  ``dominated``/``evicted``).  v2 readers accept v1 streams unchanged —
  every v1 stream is a valid v2 stream; see :data:`SUPPORTED_SCHEMAS`.
* ``repro-obs/v3`` (current) — the live-operations schema.  The
  ``summary`` payload gains an optional ``histograms`` object (fixed
  log-spaced bucket counts plus bucket-derived p50/p95/p99/max, see
  :data:`repro.obs.telemetry.LATENCY_BUCKET_EDGES`); two event kinds are
  added: ``slow_decision`` — the policy service's structured log entry
  for a decision that exceeded its configured latency threshold,
  optionally carrying the offending span subtree — and
  ``metrics_snapshot`` — one timestamped live snapshot of the whole
  registry, the line format of the daemon's periodic metrics flusher
  (:mod:`repro.obs.live`).  A flusher stream is a ``session_start``
  header followed by nothing but ``metrics_snapshot`` lines; the
  framing rule below exempts snapshot lines, so a stream from a
  daemon killed mid-flight stays valid (truncation is not corruption).
  v3 readers accept v1 and v2 streams unchanged.

Determinism contract: for a seeded campaign, the ``summary`` event's
``counters`` object and the episode-ordered simulation events
(``episode_start``/``episode_end``/``decision``/``refine``/...) are
identical whatever the worker count — the campaign engine buffers them per
chunk and replays them in chunk order.  Span *structure* (names, nesting,
emission order) shares the guarantee; span timestamps do not.  Outside the
contract sit the wall-clock fields in :data:`WALL_CLOCK_FIELDS`, the
``timers`` and ``process_counters`` summary objects, process-local events
(``cache_build``/``cache_decline`` happen once per worker process), and
the ``workers`` extra on ``campaign_start`` — all varying run to run or
with the worker count, exactly as the ``algorithm_time`` metric does
(see :mod:`repro.sim.metrics`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Version tag written by ``session_start`` events.
SCHEMA_VERSION = "repro-obs/v3"

#: Schema versions :func:`validate_stream` accepts.  Each version's event
#: kinds are a superset of its predecessor's, so one validator covers all.
SUPPORTED_SCHEMAS = frozenset({"repro-obs/v1", "repro-obs/v2", "repro-obs/v3"})

#: Required fields per event kind (beyond ``event`` and ``seq``).
EVENT_FIELDS: dict[str, frozenset[str]] = {
    # Session lifecycle (written by repro.obs.telemetry.session).
    "session_start": frozenset({"schema"}),
    "summary": frozenset({"counters", "process_counters", "gauges", "timers"}),
    "session_end": frozenset(),
    # Campaign lifecycle (repro.sim.campaign / repro.sim.parallel).
    "campaign_start": frozenset({"controller", "injections", "chunk_size"}),
    "campaign_end": frozenset({"controller", "episodes"}),
    "episode_start": frozenset({"episode", "fault_state"}),
    "episode_end": frozenset(
        {"episode", "recovered", "terminated", "steps", "cost"}
    ),
    # Controller decisions (repro.controllers.bounded).
    "decision": frozenset({"action", "terminate"}),
    # Bound maintenance (repro.bounds.incremental / vector_set).
    "refine": frozenset({"action", "added", "improvement", "set_size"}),
    "bound_evict": frozenset({"set_size"}),
    # Belief tracking (repro.controllers.base).
    "belief_update_failure": frozenset(
        {"action", "observation", "fallback_recovered"}
    ),
    # Solver routing (repro.mdp.linear_solvers).
    "solver_dispatch": frozenset({"requested", "method", "n_states"}),
    # Joint-factor cache (repro.pomdp.cache).
    "cache_build": frozenset({"n_states", "nbytes"}),
    "cache_decline": frozenset({"n_states", "required_bytes"}),
    # Hierarchical trace spans (repro.obs.telemetry, v2).
    "span": frozenset({"name", "span_id", "t_start", "seconds"}),
    # Live operations (repro.serve / repro.obs.live, v3).
    "slow_decision": frozenset({"session", "seconds", "threshold"}),
    "metrics_snapshot": frozenset({"counters", "gauges", "histograms"}),
}

#: Optional fields whose values are wall-clock measurements and therefore
#: outside the determinism contract (like the ``algorithm_time`` metric).
#: ``t`` is the elapsed-time stamp on enriched ``refine`` events;
#: ``t_start`` is the span start offset.
WALL_CLOCK_FIELDS = frozenset({"seconds", "t", "t_start"})


def validate_event(record: Any) -> list[str]:
    """Problems with one decoded event record (empty when valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"event record must be an object, got {type(record).__name__}"]
    kind = record.get("event")
    if not isinstance(kind, str):
        problems.append("missing or non-string 'event' field")
        return problems
    if kind not in EVENT_FIELDS:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    if not isinstance(record.get("seq"), int):
        problems.append(f"{kind}: missing or non-integer 'seq' field")
    missing = EVENT_FIELDS[kind] - record.keys()
    if missing:
        problems.append(f"{kind}: missing required fields {sorted(missing)}")
    if kind == "session_start":
        schema = record.get("schema")
        if schema is not None and schema not in SUPPORTED_SCHEMAS:
            problems.append(
                f"session_start: unsupported schema {schema!r} "
                f"(supported: {sorted(SUPPORTED_SCHEMAS)})"
            )
    return problems


def validate_stream(path: str | Path) -> list[str]:
    """Validate a JSONL run file; returns per-line problem strings.

    Checks every line parses as JSON, every event is schema-valid, ``seq``
    increases monotonically, and the stream opens with ``session_start``
    and ends with ``session_end`` preceded by a ``summary``.

    An empty stream and a header-only stream (``session_start`` with no
    further events — what a run killed before its summary leaves behind)
    are both *valid*: truncation is not corruption, and the report CLI
    renders them as empty runs.  Framing is only enforced once events
    beyond the header appear.
    """
    problems: list[str] = []
    kinds: list[str] = []
    last_seq = -1
    with open(path, encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                problems.append(f"line {line_number}: not JSON ({error})")
                continue
            for problem in validate_event(record):
                problems.append(f"line {line_number}: {problem}")
            if isinstance(record, dict):
                kinds.append(str(record.get("event")))
                seq = record.get("seq")
                if isinstance(seq, int):
                    if seq <= last_seq:
                        problems.append(
                            f"line {line_number}: seq {seq} not increasing "
                            f"(previous {last_seq})"
                        )
                    last_seq = seq
    # Framing ignores metrics_snapshot lines: the daemon's flusher stream
    # is a header followed by snapshots until the process dies, and a
    # kill mid-flight must not render the artifact invalid.
    framed = [kind for kind in kinds if kind != "metrics_snapshot"]
    if not framed or framed == ["session_start"]:
        return problems
    if framed[0] != "session_start":
        problems.append(f"stream must open with session_start, got {framed[0]!r}")
    if framed[-1] != "session_end":
        problems.append(f"stream must end with session_end, got {framed[-1]!r}")
    elif len(framed) < 2 or framed[-2] != "summary":
        problems.append("session_end must be preceded by a summary event")
    return problems
