"""The observability layer: registry semantics, sessions, chunk merges."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.controllers.bounded import BoundedController
from repro.controllers.most_likely import MostLikelyController
from repro.obs import (
    SCHEMA_VERSION,
    Telemetry,
    activated,
    active,
    enabled,
    session,
    validate_event,
    validate_stream,
)
from repro.sim.campaign import run_campaign


class TestRegistry:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.count("a")
        telemetry.count("a", 4)
        telemetry.count("b")
        assert telemetry.counters == {"a": 5, "b": 1}

    def test_process_counters_are_a_separate_namespace(self):
        telemetry = Telemetry()
        telemetry.count("cache.hits")
        telemetry.count_process("cache.hits", 3)
        assert telemetry.counters["cache.hits"] == 1
        assert telemetry.process_counters["cache.hits"] == 3

    def test_gauge_keeps_latest_value(self):
        telemetry = Telemetry()
        telemetry.gauge("size", 3)
        telemetry.gauge("size", 2)
        assert telemetry.gauges == {"size": 2.0}

    def test_span_accumulates_time_and_calls(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.span("work"):
                pass
        seconds, calls = telemetry.timers["work"]
        assert calls == 3
        assert seconds >= 0.0

    def test_span_records_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("work"):
                raise RuntimeError("boom")
        assert telemetry.timers["work"][1] == 1


class TestActivation:
    def test_disabled_by_default(self):
        assert active() is None
        assert not enabled()

    def test_activated_swaps_and_restores(self):
        telemetry = Telemetry()
        with activated(telemetry):
            assert active() is telemetry
            assert enabled()
        assert active() is None

    def test_activated_restores_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with activated(telemetry):
                raise RuntimeError("boom")
        assert active() is None

    def test_activated_none_shields_outer_registry(self):
        """Chunks swap to their own registry — even to None — so the
        caller's registry never double-counts chunk-side work."""
        outer = Telemetry()
        with activated(outer):
            with activated(None):
                assert active() is None
            assert active() is outer


class TestSnapshotAbsorb:
    def _loaded(self):
        telemetry = Telemetry()
        telemetry.count("decisions", 2)
        telemetry.count_process("cache.hits", 1)
        telemetry.gauge("set_size", 5)
        with telemetry.span("work"):
            pass
        telemetry.event("episode_start", episode=0, fault_state=3)
        return telemetry

    def test_snapshot_is_picklable(self):
        import pickle

        snapshot = self._loaded().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.counters == snapshot.counters
        assert clone.events == snapshot.events

    def test_absorb_adds_counters_and_maxes_gauges(self):
        target = Telemetry()
        target.count("decisions")
        target.gauge("set_size", 9)
        target.absorb(self._loaded().snapshot())
        assert target.counters["decisions"] == 3
        assert target.process_counters["cache.hits"] == 1
        assert target.gauges["set_size"] == 9.0  # max wins
        assert target.timers["work"][1] == 1

    def test_absorb_replays_events_with_chunk_tag(self):
        target = Telemetry()
        target.absorb(self._loaded().snapshot(), chunk=7)
        snapshot = target.snapshot()
        (record,) = snapshot.events
        assert record["event"] == "episode_start"
        assert record["chunk"] == 7
        assert record["fault_state"] == 3

    def test_absorbed_events_get_fresh_monotonic_seq(self):
        target = Telemetry()
        target.event("session_start", schema=SCHEMA_VERSION)
        target.absorb(self._loaded().snapshot(), chunk=0)
        seqs = [record["seq"] for record in target.snapshot().events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestSession:
    def test_writes_framed_schema_valid_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with session(path) as telemetry:
            telemetry.count("decisions")
            telemetry.event("episode_start", episode=0, fault_state=1)
        assert validate_stream(path) == []
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        kinds = [record["event"] for record in records]
        assert kinds[0] == "session_start"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert kinds[-2:] == ["summary", "session_end"]
        assert records[-2]["counters"] == {"decisions": 1}

    def test_buffers_without_path(self):
        with session() as telemetry:
            telemetry.event("episode_start", episode=0, fault_state=1)
        kinds = [r["event"] for r in telemetry.snapshot().events]
        assert kinds == ["session_start", "episode_start", "summary", "session_end"]

    def test_deactivates_on_exit(self, tmp_path):
        with session(tmp_path / "run.jsonl"):
            assert enabled()
        assert not enabled()


class TestSchemaValidation:
    def test_unknown_kind_rejected(self):
        assert validate_event({"event": "nope", "seq": 0})

    def test_missing_required_fields_rejected(self):
        problems = validate_event({"event": "episode_start", "seq": 0})
        assert any("missing required fields" in p for p in problems)

    def test_valid_event_accepted(self):
        record = {"event": "episode_start", "seq": 0, "episode": 1, "fault_state": 2}
        assert validate_event(record) == []

    def test_non_monotonic_seq_flagged(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION},
            {"event": "session_end", "seq": 0},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        problems = validate_stream(path)
        assert any("not increasing" in p for p in problems)

    def test_unframed_stream_flagged(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"event": "session_end", "seq": 0}) + "\n")
        problems = validate_stream(path)
        assert any("session_start" in p for p in problems)
        assert any("summary" in p for p in problems)


class TestCampaignIntegration:
    INJECTIONS = 24
    SEED = 11

    def _campaign(self, system, parallel):
        controller = BoundedController(system.model, depth=1)
        faults = np.array([system.fault_a, system.fault_b])
        with session() as telemetry:
            run_campaign(
                controller,
                fault_states=faults,
                injections=self.INJECTIONS,
                seed=self.SEED,
                parallel=parallel,
            )
        return telemetry

    def test_counters_are_worker_count_invariant(self, simple_system):
        """The acceptance criterion: aggregated deterministic counters (and
        gauges) are identical for serial and 4-worker runs."""
        serial = self._campaign(simple_system, parallel=None)
        sharded = self._campaign(simple_system, parallel=4)
        assert dict(serial.counters) == dict(sharded.counters)
        assert serial.gauges == sharded.gauges

    def test_episode_events_cover_every_injection(self, simple_system):
        telemetry = self._campaign(simple_system, parallel=2)
        events = telemetry.snapshot().events
        starts = [r for r in events if r["event"] == "episode_start"]
        ends = [r for r in events if r["event"] == "episode_end"]
        assert [r["episode"] for r in starts] == list(range(self.INJECTIONS))
        assert [r["episode"] for r in ends] == list(range(self.INJECTIONS))

    def test_stream_from_campaign_is_schema_valid(self, simple_system, tmp_path):
        path = tmp_path / "run.jsonl"
        controller = MostLikelyController(simple_system.model)
        faults = np.array([simple_system.fault_a, simple_system.fault_b])
        with session(path):
            run_campaign(
                controller, fault_states=faults, injections=8, seed=3, parallel=2
            )
        assert validate_stream(path) == []

    def test_no_telemetry_outside_session(self, simple_system):
        """Off by default: running a campaign without a session must not
        activate or accumulate anything."""
        controller = MostLikelyController(simple_system.model)
        faults = np.array([simple_system.fault_a])
        run_campaign(controller, fault_states=faults, injections=4, seed=0)
        assert active() is None

    def test_decision_events_never_label_the_sentinel(self, simple_notified_system):
        """Notification models terminate with the NO_ACTION sentinel; the
        decision event carries it as data but no executable action."""
        controller = BoundedController(simple_notified_system.model, depth=1)
        faults = np.array(
            [simple_notified_system.fault_a, simple_notified_system.fault_b]
        )
        with session() as telemetry:
            run_campaign(
                controller, fault_states=faults, injections=6, seed=1
            )
        events = telemetry.snapshot().events
        decisions = [r for r in events if r["event"] == "decision"]
        assert decisions, "expected decision events from the bounded controller"
        for record in decisions:
            if record["action"] < 0:
                assert record["terminate"] is True


class TestThreadSafety:
    """Concurrent sessions share one registry; spans must not cross-link."""

    def test_span_stacks_are_per_thread(self):
        telemetry = Telemetry(trace=True)
        import threading

        barrier = threading.Barrier(4)

        def worker(label: str) -> None:
            barrier.wait()
            for turn in range(20):
                with telemetry.trace_span("decision", session=label, turn=turn):
                    with telemetry.trace_span("inner"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(f"s{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = list(telemetry.spans)
        assert len(spans) == 4 * 20 * 2
        by_id = {span.span_id: span for span in spans}
        # Every inner span's parent is a decision span of the *same* thread's
        # session — interleaving across threads never produces a cross-thread
        # parent link.
        for span in spans:
            if span.name != "inner":
                continue
            parent = by_id[span.parent_id]
            assert parent.name == "decision"
        labelled = [dict(s.args)["session"] for s in spans if s.name == "decision"]
        assert sorted(set(labelled)) == ["s0", "s1", "s2", "s3"]

    def test_concurrent_events_are_not_lost(self):
        telemetry = Telemetry(trace=False)
        import threading

        def worker() -> None:
            for _ in range(200):
                telemetry.event("decision", action=0, terminate=False)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = telemetry.snapshot().events
        assert len([e for e in events if e["event"] == "decision"]) == 800
        # seq numbers were allocated under the lock: unique and gap-free.
        seqs = sorted(e["seq"] for e in events)
        assert seqs == list(range(len(events)))
