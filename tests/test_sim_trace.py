"""Tests for episode tracing."""

import numpy as np

from repro.controllers.bounded import BoundedController
from repro.controllers.oracle import OracleController
from repro.sim.campaign import run_episode
from repro.sim.environment import RecoveryEnvironment
from repro.sim.trace import trace_episode


class TestTraceEpisode:
    def test_trace_matches_untraced_metrics(self, simple_system):
        """Same controller, same seed: trace metrics == run_episode metrics."""
        plain = run_episode(
            BoundedController(simple_system.model, depth=1),
            RecoveryEnvironment(simple_system.model, seed=5),
            simple_system.fault_a,
        )
        trace = trace_episode(
            BoundedController(simple_system.model, depth=1),
            RecoveryEnvironment(simple_system.model, seed=5),
            simple_system.fault_a,
        )
        assert trace.metrics.cost == plain.cost
        assert trace.metrics.recovery_time == plain.recovery_time
        assert trace.metrics.actions == plain.actions
        assert trace.metrics.monitor_calls == plain.monitor_calls
        assert trace.metrics.recovered == plain.recovered

    def test_steps_carry_labels_and_beliefs(self, simple_system):
        trace = trace_episode(
            BoundedController(simple_system.model, depth=1),
            RecoveryEnvironment(simple_system.model, seed=5),
            simple_system.fault_a,
        )
        assert trace.fault_label == "fault(a)"
        assert len(trace.steps) >= 1
        for step in trace.steps:
            assert 0.0 <= step.recovered_probability <= 1.0 + 1e-9
            assert step.action_label
        # Confidence in recovery must end higher than it started.
        assert (
            trace.steps[-1].recovered_probability
            >= trace.steps[0].recovered_probability
        )

    def test_time_is_monotone(self, simple_system):
        trace = trace_episode(
            BoundedController(simple_system.model, depth=1),
            RecoveryEnvironment(simple_system.model, seed=7),
            simple_system.fault_b,
        )
        times = [step.time_after for step in trace.steps]
        assert times == sorted(times)

    def test_oracle_trace_has_no_observations(self, simple_system):
        trace = trace_episode(
            OracleController(simple_system.model),
            RecoveryEnvironment(simple_system.model, seed=1),
            simple_system.fault_a,
        )
        assert trace.metrics.monitor_calls == 0
        assert all(step.observation == -1 for step in trace.steps)

    def test_render_contains_actions_and_outcome(self, simple_system):
        trace = trace_episode(
            BoundedController(simple_system.model, depth=1),
            RecoveryEnvironment(simple_system.model, seed=3),
            simple_system.fault_a,
        )
        text = trace.render()
        assert "Recovery trace for fault(a)" in text
        assert "recovered" in text
        assert "P[recovered]" in text

    def test_emn_trace(self, emn_system):
        pomdp = emn_system.model.pomdp
        trace = trace_episode(
            BoundedController(
                emn_system.model, depth=1, refine_min_improvement=1.0
            ),
            RecoveryEnvironment(emn_system.model, seed=2, monitor_tail=5.0),
            pomdp.state_index("zombie(DB)"),
        )
        assert trace.metrics.recovered
        # The deterministic DB-zombie signature (both paths fail) should
        # drive a restart(DB) somewhere in the trace.
        assert any("restart(DB)" == step.action_label for step in trace.steps)
