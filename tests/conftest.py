"""Shared fixtures: the paper's models at test-friendly scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pomdp.model import POMDP
from repro.systems.emn import build_emn_system
from repro.systems.simple import build_simple_system


@pytest.fixture(scope="session")
def simple_system():
    """Figure 1(a) example without recovery notification (Figure 2(b))."""
    return build_simple_system(recovery_notification=False)


@pytest.fixture(scope="session")
def simple_notified_system():
    """Figure 1(a) example with recovery notification (Figure 2(a))."""
    return build_simple_system(recovery_notification=True, miss_rate=0.0)


@pytest.fixture(scope="session")
def simple_discounted_system():
    """Discounted variant of the example, exactly solvable by Monahan VI."""
    return build_simple_system(recovery_notification=False, discount=0.9)


@pytest.fixture(scope="session")
def emn_system():
    """The full EMN system with the paper's parameters."""
    return build_emn_system()


@pytest.fixture(scope="session")
def emn_zombie_system():
    """EMN reduced to null + 5 zombie states (faster diagnosis tests)."""
    return build_emn_system(include_crash_faults=False)


def random_pomdp(
    rng: np.random.Generator,
    n_states: int = 4,
    n_actions: int = 3,
    n_observations: int = 3,
    discount: float = 0.9,
) -> POMDP:
    """A random dense POMDP with non-positive rewards (for property tests)."""
    transitions = rng.dirichlet(np.ones(n_states), size=(n_actions, n_states))
    observations = rng.dirichlet(
        np.ones(n_observations), size=(n_actions, n_states)
    )
    rewards = -rng.uniform(0.0, 2.0, size=(n_actions, n_states))
    return POMDP(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        discount=discount,
    )
