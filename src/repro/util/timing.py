"""Wall-clock timing used to reproduce Table 1's "algorithm time" column."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    The controller wraps every call to its decision procedure in
    ``with stopwatch: ...`` and the campaign reports
    ``stopwatch.total_seconds / decisions`` as the per-decision algorithm
    time, mirroring the paper's per-fault "Algorithm Time" metric.
    """

    def __init__(self):
        self.total_seconds = 0.0
        self.laps = 0
        self._started_at: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started_at = time.perf_counter()  # codelint: ignore[R903]
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._started_at is not None:
            self.total_seconds += time.perf_counter() - self._started_at  # codelint: ignore[R903]
            self.laps += 1
            self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.total_seconds = 0.0
        self.laps = 0
        self._started_at = None

    @property
    def mean_seconds(self) -> float:
        """Mean seconds per lap (0.0 before any lap completes)."""
        if self.laps == 0:
            return 0.0
        return self.total_seconds / self.laps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stopwatch(total={self.total_seconds:.6f}s, laps={self.laps})"
