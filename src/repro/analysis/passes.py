"""The static analyzer's checking passes.

Each pass inspects a :class:`~repro.analysis.view.ModelView` and returns a
list of :class:`~repro.analysis.diagnostics.Diagnostic` findings; none of
them raises on model problems, so a single :func:`analyze` run reports
*every* violation instead of failing fast on the first.  The error-level
passes mirror the preconditions the paper's soundness results rest on:

* ``R001``/``R002`` — stochasticity, shared tolerances with
  :mod:`repro.util.validation` so the analyzer and the model constructors
  can never disagree on what "stochastic" means;
* ``R003``/``R004`` — Condition 1 (``S_phi`` reachable from every state);
* ``R005`` — Condition 2 (non-positive single-step rewards);
* ``R006``/``R007`` — the Figure 2(a) absorbing-null rewiring;
* ``R008`` — the Figure 2(b) terminate pair, including the
  ``r(s, a_T) = rbar(s) * t_op`` termination rewards;
* ``R009`` — the Eq. 5 finiteness precondition of the RA-Bound (no
  rewarded recurrent state in the uniformly-random chain).

Every pass is *sparse-native*: on the sparse backend it works directly on
the CSR containers (row hashing for duplicate detection, ``csgraph`` SCC
labels for the decomposition, a sparse linear solve for absorption times)
and never materialises a dense ``|S| x |S|`` matrix, so the full R0xx/R1xx
suite runs on the 300,002-state tiered instance.  The few remaining size
cutoffs are genuine super-linear scans; each reports an ``R203`` naming
the pass, the threshold constant and its value, and every one can be
overridden with ``analyze(..., force=True)`` (``--force`` on the CLI).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.view import ModelView
from repro.linalg.containers import SparseTransitions, StructuredRewards
from repro.linalg.ops import (
    observation_matrix_dense,
    reward_column,
    reward_row,
    transition_matrix_dense,
)
from repro.mdp.classify import (
    EDGE_EPSILON,
    classify_chain,
    expected_absorption_time,
    reachable_set,
    scc_summary,
)
from repro.util.validation import NEGATIVITY_ATOL, SUM_ATOL

#: Rewards smaller than this in magnitude count as zero (matches
#: :data:`repro.bounds.ra_bound.REWARD_EPSILON`).
REWARD_EPSILON = 1e-12

#: Observation probabilities below this count as "cannot be emitted".
SUPPORT_EPSILON = 1e-12

#: Expected absorption time (in steps of the uniformly-random chain) past
#: which the RA-Bound, while finite, is flagged as pathologically loose.
SLOW_ABSORPTION_STEPS = 10_000.0

#: Sparse models beyond this many states skip the R105 transient-state
#: linear solve (the one remaining pass whose cost is a sparse
#: factorisation, ~O(|S|^1.5) on chain-like supports).  Far above the
#: 300,002-state acceptance instance, which solves in well under a second.
SPARSE_SOLVE_SKIP_STATES = 2_000_000

#: Budget of within-group pairwise comparisons for the hash-grouped
#: duplicate-action pass.  Hashing keeps healthy models near zero pairs;
#: only an adversarial model with thousands of content-identical actions
#: can exceed this.
DUPLICATE_PAIR_BUDGET = 250_000

#: Per-state O(|A|) scans (null-rewiring, RA-finiteness reward columns)
#: examine at most this many states on sparse models before noting the
#: cutoff; healthy recovery models have a handful of null/recurrent states.
PER_STATE_SCAN_CUTOFF = 4_096

#: At most this many labels are spelled out inside a message.
MESSAGE_LABEL_CAP = 8

#: At most this many state labels are attached to a finding's ``states``
#: tuple, so a 300k-state pathology cannot balloon a report.
STATE_TUPLE_CAP = 32


def _sparse_skip(
    pass_name: str,
    threshold_name: str,
    threshold: float,
    measured: float,
    why: str,
) -> list[Diagnostic]:
    """A parameterised R203: which pass, which cutoff, and how to override."""
    return [
        Diagnostic(
            code="R203",
            message=(
                f"{pass_name} pass hit its size cutoff: {why} "
                f"({measured:g} exceeds {threshold_name}={threshold:g})"
            ),
            fix_hint=(
                "re-run with analyze(force=True) (CLI: --force) to run the "
                "pass anyway, or reduce the instance"
            ),
        )
    ]


def _labels_fragment(labels, indices) -> str:
    """Render up to :data:`MESSAGE_LABEL_CAP` labels, noting the overflow."""
    shown = [labels[int(i)] for i in indices[:MESSAGE_LABEL_CAP]]
    overflow = len(indices) - len(shown)
    if overflow > 0:
        return f"{shown} (+{overflow} more)"
    return f"{shown}"


def _states_tuple(labels, indices) -> tuple[str, ...]:
    return tuple(labels[int(i)] for i in indices[:STATE_TUPLE_CAP])


def _bad_rows(matrix: np.ndarray) -> np.ndarray:
    """Row indices that are not probability distributions."""
    negative = (matrix < -NEGATIVITY_ATOL).any(axis=1)
    off_sum = ~np.isclose(matrix.sum(axis=1), 1.0, atol=SUM_ATOL)
    return np.flatnonzero(negative | off_sum)


def _bad_csr_rows(matrix) -> np.ndarray:
    """Row indices of a CSR matrix that are not probability distributions."""
    negative = np.zeros(matrix.shape[0], dtype=bool)
    if matrix.nnz:
        bad_entries = matrix.data < -NEGATIVITY_ATOL
        if bad_entries.any():
            row_nnz = np.diff(matrix.indptr)
            entry_row = np.repeat(np.arange(matrix.shape[0]), row_nnz)
            negative[entry_row[bad_entries]] = True
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    off_sum = ~np.isclose(sums, 1.0, atol=SUM_ATOL)
    return np.flatnonzero(negative | off_sum)


def _sparse_stochasticity(view: ModelView) -> list[Diagnostic]:
    """R001/R002 over the sparse containers, one check per stored row."""
    findings = []
    transitions = view.transitions
    bad_base = _bad_csr_rows(transitions.base)
    if bad_base.size:
        sums = np.asarray(transitions.base[bad_base].sum(axis=1)).ravel()
        labels = [view.state_labels[s] for s in bad_base[:8]]
        findings.append(
            Diagnostic(
                code="R001",
                message=(
                    f"shared transition base rows for states {labels} are "
                    f"not distributions (sums "
                    f"{np.round(sums[:8], 6).tolist()})"
                ),
                states=tuple(labels),
                fix_hint=(
                    "make each row non-negative and sum to 1 (tolerance "
                    f"{SUM_ATOL:g})"
                ),
            )
        )
    bad_rows = _bad_csr_rows(transitions.rows)
    for r in bad_rows[:8]:
        a, s = int(transitions.row_action[r]), int(transitions.row_state[r])
        findings.append(
            Diagnostic(
                code="R001",
                message=(
                    f"transitions[{view.action_labels[a]!r}] override row "
                    f"for state {view.state_labels[s]!r} is not a "
                    "distribution"
                ),
                states=(view.state_labels[s],),
                actions=(view.action_labels[a],),
                fix_hint=(
                    "make each row non-negative and sum to 1 (tolerance "
                    f"{SUM_ATOL:g})"
                ),
            )
        )
    if view.observations is not None:
        observations = view.observations
        matrices = [(None, observations.base)] + [
            (a, m) for a, m in sorted(observations.overrides.items())
        ]
        for action, matrix in matrices:
            bad = _bad_csr_rows(matrix)
            if not bad.size:
                continue
            where = (
                "shared observation base"
                if action is None
                else f"observations[{view.action_labels[action]!r}]"
            )
            findings.append(
                Diagnostic(
                    code="R002",
                    message=(
                        f"{where} rows for states "
                        f"{[view.state_labels[s] for s in bad[:8]]} are not "
                        "distributions"
                    ),
                    states=tuple(view.state_labels[s] for s in bad[:8]),
                    actions=(
                        () if action is None else (view.action_labels[action],)
                    ),
                    fix_hint=(
                        "each state's observation row q(.|s, a) must be a "
                        "distribution over the observation symbols"
                    ),
                )
            )
    return findings


def stochasticity_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R001/R002: every transition and observation row must be a distribution."""
    if view.is_sparse:
        return _sparse_stochasticity(view)
    findings = []
    for a in range(view.n_actions):
        bad = _bad_rows(view.transitions[a])
        if bad.size:
            sums = view.transitions[a][bad].sum(axis=1)
            findings.append(
                Diagnostic(
                    code="R001",
                    message=(
                        f"transitions[{view.action_labels[a]!r}] rows for "
                        f"states {[view.state_labels[s] for s in bad]} are "
                        f"not distributions (sums {np.round(sums, 6).tolist()})"
                    ),
                    states=tuple(view.state_labels[s] for s in bad),
                    actions=(view.action_labels[a],),
                    fix_hint=(
                        "make each row non-negative and sum to 1 (tolerance "
                        f"{SUM_ATOL:g}); unlisted builder transitions default "
                        "to self-loops"
                    ),
                )
            )
    if view.observations is not None:
        for a in range(view.n_actions):
            bad = _bad_rows(view.observations[a])
            if bad.size:
                findings.append(
                    Diagnostic(
                        code="R002",
                        message=(
                            f"observations[{view.action_labels[a]!r}] rows for "
                            f"states {[view.state_labels[s] for s in bad]} are "
                            "not distributions"
                        ),
                        states=tuple(view.state_labels[s] for s in bad),
                        actions=(view.action_labels[a],),
                        fix_hint=(
                            "each state's observation row q(.|s, a) must be a "
                            "distribution over the observation symbols"
                        ),
                    )
                )
    return findings


def _exempt_mask(view: ModelView, exempt_states: np.ndarray | None) -> np.ndarray:
    exempt = np.zeros(view.n_states, dtype=bool)
    if exempt_states is not None:
        exempt |= np.asarray(exempt_states, dtype=bool)
    if view.terminate_state is not None:
        exempt[view.terminate_state] = True
    return exempt


def condition_1_diagnostics(
    view: ModelView, exempt_states: np.ndarray | None = None
) -> list[Diagnostic]:
    """R003/R004: Condition 1 — ``S_phi`` reachable from every state.

    ``exempt_states`` are excluded from the requirement; the terminate
    state ``s_T`` (absorbing by design) is always exempt.
    """
    if view.null_states is None:
        return []
    mask = view.null_states
    if not mask.any():
        return [
            Diagnostic(
                code="R003",
                message="the null-fault set S_phi is empty",
                fix_hint="declare at least one state with null=True",
            )
        ]
    union = view.union_graph()
    # Reachability *to* S_phi == reachability *from* S_phi in the reverse graph.
    can_recover = reachable_set(union.T, mask) | _exempt_mask(view, exempt_states)
    stuck = np.flatnonzero(~can_recover)
    if not stuck.size:
        return []
    return [
        Diagnostic(
            code="R004",
            message=(
                f"state {view.state_labels[int(stuck[0])]!r} cannot reach "
                f"any null-fault state under any action sequence "
                f"({stuck.size} such states: "
                f"{_labels_fragment(view.state_labels, stuck)})"
            ),
            states=_states_tuple(view.state_labels, stuck),
            fix_hint=(
                "add a recovery action whose transitions lead these states "
                "(possibly through intermediates) into S_phi"
            ),
        )
    ]


def _structured_positive_candidates(rewards: StructuredRewards) -> np.ndarray:
    """Actions that *might* have a positive reward entry (superset).

    The rank-one part's per-action maximum is closed-form; override entries
    flag their own actions.  Actions outside this set cannot violate
    Condition 2, so the exact per-row check below runs on candidates only —
    O(candidates * |S|) instead of O(|A| * |S|).
    """
    rate_extreme = np.where(
        rewards.time_scale >= 0.0, rewards.rate.max(), rewards.rate.min()
    )
    base_max = rewards.time_scale * rate_extreme - rewards.fixed
    candidates = base_max > NEGATIVITY_ATOL
    if rewards.override.nnz:
        positive_entries = rewards.override.data > NEGATIVITY_ATOL
        if positive_entries.any():
            row_nnz = np.diff(rewards.override.indptr)
            entry_row = np.repeat(np.arange(rewards.n_actions), row_nnz)
            candidates[entry_row[positive_entries]] = True
    return np.flatnonzero(candidates)


def condition_2_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R005: Condition 2 — all single-step rewards non-positive."""
    if isinstance(view.rewards, StructuredRewards):
        actions = _structured_positive_candidates(view.rewards)
    else:
        actions = range(view.n_actions)
    findings = []
    for a in actions:
        row = reward_row(view.rewards, a)
        positive = np.flatnonzero(row > NEGATIVITY_ATOL)
        if not positive.size:
            continue
        worst = int(positive[np.argmax(row[positive])])
        findings.append(
            Diagnostic(
                code="R005",
                message=(
                    f"r({view.state_labels[worst]!r}, "
                    f"{view.action_labels[a]!r}) = "
                    f"{row[worst]:.3g} > 0"
                    + (
                        f" (and {positive.size - 1} more states under this "
                        "action)"
                        if positive.size > 1
                        else ""
                    )
                ),
                states=_states_tuple(view.state_labels, positive),
                actions=(view.action_labels[a],),
                fix_hint=(
                    "rewards are negated costs; express gains as smaller "
                    "costs so every r(s, a) <= 0"
                ),
            )
        )
    return findings


class _SelfLoopIndex:
    """Per-state effective self-loop lookup over a sparse container.

    One upfront vectorised pass (override diag sampling + a stable sort by
    state) makes each subsequent per-state query O(log R + overrides at
    that state) instead of a full scan of the override list.
    """

    def __init__(self, transitions: SparseTransitions):
        self._transitions = transitions
        self._base_diag = np.asarray(transitions.base.diagonal()).ravel()
        self._order = np.argsort(transitions.row_state, kind="stable")
        self._sorted_states = transitions.row_state[self._order]
        self._loops = transitions.override_self_loops()

    def values(self, state: int) -> np.ndarray:
        """``T_a[s, s]`` for every action ``a``."""
        values = np.full(
            self._transitions.n_actions, float(self._base_diag[state])
        )
        lo, hi = np.searchsorted(self._sorted_states, [state, state + 1])
        hits = self._order[lo:hi]
        if hits.size:
            values[self._transitions.row_action[hits]] = self._loops[hits]
        return values


def null_rewiring_diagnostics(
    view: ModelView, *, force: bool = False
) -> list[Diagnostic]:
    """R006/R007: the Figure 2(a) rewiring for notified systems.

    With recovery notification every null state must be absorbing under
    every action (R006) and accrue zero reward there (R007); otherwise the
    undiscounted value in ``S_phi`` is not 0 and Eq. 5 loses its finite
    solution.
    """
    if not view.recovery_notification or view.null_states is None:
        return []
    nulls = np.flatnonzero(view.null_states)
    findings: list[Diagnostic] = []
    if view.is_sparse and nulls.size > PER_STATE_SCAN_CUTOFF and not force:
        findings.extend(
            _sparse_skip(
                "null-rewiring (R006/R007)",
                "PER_STATE_SCAN_CUTOFF",
                PER_STATE_SCAN_CUTOFF,
                nulls.size,
                f"only the first {PER_STATE_SCAN_CUTOFF} of {nulls.size} "
                "null states were checked",
            )
        )
        nulls = nulls[:PER_STATE_SCAN_CUTOFF]
    loop_index = _SelfLoopIndex(view.transitions) if view.is_sparse else None
    for s in nulls:
        if loop_index is not None:
            self_loops = loop_index.values(int(s))
        else:
            self_loops = view.transitions[:, s, s]
        leaky = np.flatnonzero(np.abs(self_loops - 1.0) > SUM_ATOL)
        if leaky.size:
            findings.append(
                Diagnostic(
                    code="R006",
                    message=(
                        f"null state {view.state_labels[s]!r} is not "
                        "absorbing under actions "
                        f"{_labels_fragment(view.action_labels, leaky)}"
                    ),
                    states=(view.state_labels[s],),
                    actions=_states_tuple(view.action_labels, leaky),
                    fix_hint=(
                        "apply make_null_absorbing (Figure 2(a)) so every "
                        "action self-loops in S_phi"
                    ),
                )
            )
        rewarded = np.flatnonzero(
            np.abs(reward_column(view.rewards, int(s))) > REWARD_EPSILON
        )
        if rewarded.size:
            findings.append(
                Diagnostic(
                    code="R007",
                    message=(
                        f"absorbing null state {view.state_labels[s]!r} "
                        "accrues reward under actions "
                        f"{_labels_fragment(view.action_labels, rewarded)}"
                    ),
                    states=(view.state_labels[s],),
                    actions=_states_tuple(view.action_labels, rewarded),
                    fix_hint=(
                        "zero the rewards of every action in S_phi; a "
                        "recovered system must cost nothing to sit in"
                    ),
                )
            )
    return findings


def terminate_wiring_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R008: the Figure 2(b) terminate pair ``(s_T, a_T)``.

    Checks that ``a_T`` routes every state to ``s_T``, that ``s_T`` is
    absorbing and free under every action, and — when ``rbar`` and
    ``t_op`` are known — that the termination rewards equal
    ``r(s, a_T) = rbar(s) * t_op`` (0 on ``S_phi``).
    """
    s_t, a_t = view.terminate_state, view.terminate_action
    if s_t is None or a_t is None:
        return []
    findings = []
    if not (0 <= s_t < view.n_states) or not (0 <= a_t < view.n_actions):
        return [
            Diagnostic(
                code="R008",
                message=(
                    f"terminate indices s_T={s_t}, a_T={a_t} are out of "
                    f"range for |S|={view.n_states}, |A|={view.n_actions}"
                ),
                fix_hint="augment with with_termination_action (Figure 2(b))",
            )
        ]
    if view.is_sparse:
        terminate_column = view.transitions.action_column(a_t, s_t)
    else:
        terminate_column = view.transitions[a_t, :, s_t]
    missed = np.flatnonzero(np.abs(terminate_column - 1.0) > SUM_ATOL)
    if missed.size:
        findings.append(
            Diagnostic(
                code="R008",
                message=(
                    "a_T does not move states "
                    f"{_labels_fragment(view.state_labels, missed)} to s_T "
                    "with probability 1"
                ),
                states=_states_tuple(view.state_labels, missed),
                actions=(view.action_labels[a_t],),
                fix_hint="a_T must deterministically end the episode in s_T",
            )
        )
    if view.is_sparse:
        terminate_loops = view.transitions.self_loop_values(s_t)
    else:
        terminate_loops = view.transitions[:, s_t, s_t]
    leaky = np.flatnonzero(np.abs(terminate_loops - 1.0) > SUM_ATOL)
    if leaky.size:
        findings.append(
            Diagnostic(
                code="R008",
                message=(
                    "s_T is not absorbing under actions "
                    f"{_labels_fragment(view.action_labels, leaky)}"
                ),
                states=(view.state_labels[s_t],),
                actions=_states_tuple(view.action_labels, leaky),
                fix_hint="every action must self-loop in s_T",
            )
        )
    rewarded = np.flatnonzero(
        np.abs(reward_column(view.rewards, s_t)) > REWARD_EPSILON
    )
    if rewarded.size:
        findings.append(
            Diagnostic(
                code="R008",
                message=(
                    "s_T accrues reward under actions "
                    f"{_labels_fragment(view.action_labels, rewarded)}"
                ),
                states=(view.state_labels[s_t],),
                actions=_states_tuple(view.action_labels, rewarded),
                fix_hint="the terminated system must be free: r(s_T, .) = 0",
            )
        )
    if view.rate_rewards is not None and view.operator_response_time is not None:
        expected = view.rate_rewards * view.operator_response_time
        if view.null_states is not None:
            expected = np.where(view.null_states, 0.0, expected)
        expected[s_t] = 0.0
        actual = reward_row(view.rewards, a_t)
        wrong = np.flatnonzero(
            ~np.isclose(actual, expected, rtol=1e-9, atol=1e-9)
        )
        wrong = wrong[wrong != s_t]
        if wrong.size:
            first = int(wrong[0])
            findings.append(
                Diagnostic(
                    code="R008",
                    message=(
                        f"termination reward r({view.state_labels[first]!r}, "
                        f"a_T) = {actual[first]:.6g} but rbar * t_op = "
                        f"{expected[first]:.6g} ({wrong.size} state(s) "
                        "mis-wired)"
                    ),
                    states=_states_tuple(view.state_labels, wrong),
                    actions=(view.action_labels[a_t],),
                    fix_hint=(
                        "terminating leaves the fault cost running until the "
                        "operator responds: set r(s, a_T) = rbar(s) * t_op"
                    ),
                )
            )
    return findings


def ra_finiteness_diagnostics(
    view: ModelView, *, force: bool = False
) -> list[Diagnostic]:
    """R009: Eq. 5 finiteness — no rewarded recurrent state in the uniform chain."""
    if view.discount < 1.0:
        return []
    chain = view.mean_chain()
    recurrent = np.flatnonzero(classify_chain(chain).recurrent)
    findings: list[Diagnostic] = []
    if view.is_sparse and recurrent.size > PER_STATE_SCAN_CUTOFF and not force:
        findings.extend(
            _sparse_skip(
                "RA-finiteness (R009)",
                "PER_STATE_SCAN_CUTOFF",
                PER_STATE_SCAN_CUTOFF,
                recurrent.size,
                f"only the first {PER_STATE_SCAN_CUTOFF} of {recurrent.size} "
                "recurrent states were checked for rewards",
            )
        )
        recurrent = recurrent[:PER_STATE_SCAN_CUTOFF]
    for s in recurrent:
        rewarded = np.flatnonzero(
            np.abs(reward_column(view.rewards, int(s))) > REWARD_EPSILON
        )
        if rewarded.size:
            findings.append(
                Diagnostic(
                    code="R009",
                    message=(
                        f"recurrent state {view.state_labels[s]!r} of the "
                        f"uniformly-random chain accrues reward under actions "
                        f"{_labels_fragment(view.action_labels, rewarded)}; "
                        "the RA-Bound (Eq. 5) diverges"
                    ),
                    states=(view.state_labels[s],),
                    actions=_states_tuple(view.action_labels, rewarded),
                    fix_hint=(
                        "apply the Figure 2 recovery augmentation (absorbing "
                        "S_phi or the terminate pair) before solving"
                    ),
                )
            )
    return findings


def _default_initial_belief(view: ModelView) -> np.ndarray | None:
    if view.initial_belief is not None:
        return np.asarray(view.initial_belief, dtype=float)
    if view.null_states is None:
        return None
    faults = ~view.null_states
    if view.terminate_state is not None:
        faults = faults.copy()
        faults[view.terminate_state] = False
    if not faults.any():
        return None
    belief = np.zeros(view.n_states)
    belief[faults] = 1.0 / faults.sum()
    return belief


def unreachable_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R101: states unreachable from the initial belief support."""
    belief = _default_initial_belief(view)
    if belief is None:
        return []
    support = belief > 0.0
    reached = reachable_set(view.union_graph(), support)
    unreachable = np.flatnonzero(~reached)
    if not unreachable.size:
        return []
    return [
        Diagnostic(
            code="R101",
            message=(
                f"states {_labels_fragment(view.state_labels, unreachable)} "
                "can never be entered from the initial belief under any "
                "action sequence"
            ),
            states=_states_tuple(view.state_labels, unreachable),
            fix_hint=(
                "dead states cost belief-update and lookahead time; drop "
                "them or include them in the initial fault distribution"
            ),
        )
    ]


def _csr_equal(left, right) -> bool:
    """Exact equality of two sparse matrices (canonical or not)."""
    if left is right:
        return True
    if left.shape != right.shape:
        return False
    return (left - right).count_nonzero() == 0


def _observation_classes(view: ModelView) -> np.ndarray:
    """Content-equality class per action of a sparse observation stack.

    Class 0 is the shared base; override matrices get classes 1+ with
    content-identical overrides mapped to the same class (there are only
    ever a handful of overrides, so the pairwise content check is cheap).
    """
    classes = np.zeros(view.n_actions, dtype=np.int64)
    if view.observations is None:
        return classes
    observations = view.observations
    representatives: list = []
    for action, matrix in sorted(observations.overrides.items()):
        if _csr_equal(matrix, observations.base):
            continue
        for class_id, representative in enumerate(representatives):
            if _csr_equal(matrix, representative):
                classes[action] = class_id + 1
                break
        else:
            representatives.append(matrix)
            classes[action] = len(representatives)
    return classes


def _transition_signatures(
    transitions: SparseTransitions,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Per-action effective-content signature ``(states, row hashes)``.

    Only non-noop override rows participate: an override row identical to
    its base row does not change the action's effective matrix, so two
    actions are content-equal iff their non-noop ``(state, row)`` sets
    coincide (hashes first, exact comparison within candidate groups).
    """
    hashes, noop = transitions.override_row_hashes()
    pointers = transitions._action_ptr
    signatures = []
    for action in range(transitions.n_actions):
        start, stop = int(pointers[action]), int(pointers[action + 1])
        keep = ~noop[start:stop]
        signatures.append(
            (
                tuple(transitions.row_state[start:stop][keep].tolist()),
                tuple(hashes[start:stop][keep].tolist()),
            )
        )
    return signatures


def _sparse_actions_transitions_equal(
    transitions: SparseTransitions, a: int, b: int
) -> bool:
    """Exact effective-matrix equality of two actions (collision guard)."""
    _, noop = transitions.override_row_hashes()
    block_a, block_b = (
        transitions._override_slice(a),
        transitions._override_slice(b),
    )
    keep_a = np.arange(block_a.start, block_a.stop)[~noop[block_a]]
    keep_b = np.arange(block_b.start, block_b.stop)[~noop[block_b]]
    if keep_a.size != keep_b.size:
        return False
    if not np.array_equal(
        transitions.row_state[keep_a], transitions.row_state[keep_b]
    ):
        return False
    if not keep_a.size:
        return True
    return _csr_equal(transitions.rows[keep_a], transitions.rows[keep_b])


def _sparse_duplicate_actions(
    view: ModelView, *, force: bool = False
) -> list[Diagnostic]:
    """Hash-grouped R102/R103 over the sparse containers.

    Groups actions by (observation class, non-noop transition signature);
    only within-group pairs are compared exactly.  Unlike the dense pass,
    transition/observation equality here is exact rather than
    tolerance-based — row hashing cannot see "almost equal" — which is the
    right notion for machine-generated sparse models, where duplicates are
    structural, not numeric.
    """
    transitions = view.transitions
    observation_classes = _observation_classes(view)
    signatures = _transition_signatures(transitions)
    groups: dict[tuple, list[int]] = {}
    for action in range(view.n_actions):
        key = (int(observation_classes[action]), *signatures[action])
        groups.setdefault(key, []).append(action)
    total_pairs = sum(
        len(members) * (len(members) - 1) // 2 for members in groups.values()
    )
    if total_pairs > DUPLICATE_PAIR_BUDGET and not force:
        return _sparse_skip(
            "duplicate-action (R102/R103)",
            "DUPLICATE_PAIR_BUDGET",
            DUPLICATE_PAIR_BUDGET,
            total_pairs,
            f"{total_pairs} content-collision pairs to compare",
        )
    pairs = sorted(
        (a, b)
        for members in groups.values()
        for i, a in enumerate(members)
        for b in members[i + 1 :]
    )
    findings = []
    for a, b in pairs:
        if not _sparse_actions_transitions_equal(transitions, a, b):
            continue  # hash collision — contents differ
        difference = reward_row(view.rewards, a) - reward_row(view.rewards, b)
        if np.allclose(difference, 0.0, atol=REWARD_EPSILON):
            findings.append(
                Diagnostic(
                    code="R102",
                    message=(
                        f"actions {view.action_labels[a]!r} and "
                        f"{view.action_labels[b]!r} have identical "
                        "transitions, observations, and rewards"
                    ),
                    actions=(view.action_labels[a], view.action_labels[b]),
                    fix_hint="remove one; duplicates only slow the solver",
                )
            )
        elif np.all(difference <= REWARD_EPSILON):
            findings.append(_dominated(view, dominated=a, dominating=b))
        elif np.all(difference >= -REWARD_EPSILON):
            findings.append(_dominated(view, dominated=b, dominating=a))
    return findings


def duplicate_action_diagnostics(
    view: ModelView, *, force: bool = False
) -> list[Diagnostic]:
    """R102/R103: duplicate and row-wise dominated actions.

    Two actions are duplicates when their transition rows, observation
    rows, and rewards all coincide; an action is dominated when it matches
    another action's dynamics and information exactly but costs at least as
    much everywhere (and strictly more somewhere) — no policy ever needs it.

    The dense path compares all pairs with the validation tolerances; the
    sparse path groups actions by override-content hashes
    (:meth:`~repro.linalg.containers.SparseTransitions.override_row_hashes`)
    so the 150k-action tiered instance needs no pairwise sweep at all.
    """
    if view.is_sparse:
        return _sparse_duplicate_actions(view, force=force)
    findings = []

    def transition_of(a: int) -> np.ndarray:
        return transition_matrix_dense(view.transitions, a)

    def observation_of(a: int) -> np.ndarray:
        return observation_matrix_dense(view.observations, a)

    for a in range(view.n_actions):
        for b in range(a + 1, view.n_actions):
            if not np.allclose(
                transition_of(a), transition_of(b), atol=SUM_ATOL
            ):
                continue
            if view.observations is not None and not np.allclose(
                observation_of(a), observation_of(b), atol=SUM_ATOL
            ):
                continue
            difference = reward_row(view.rewards, a) - reward_row(view.rewards, b)
            if np.allclose(difference, 0.0, atol=REWARD_EPSILON):
                findings.append(
                    Diagnostic(
                        code="R102",
                        message=(
                            f"actions {view.action_labels[a]!r} and "
                            f"{view.action_labels[b]!r} have identical "
                            "transitions, observations, and rewards"
                        ),
                        actions=(view.action_labels[a], view.action_labels[b]),
                        fix_hint="remove one; duplicates only slow the solver",
                    )
                )
            elif np.all(difference <= REWARD_EPSILON):
                findings.append(
                    _dominated(view, dominated=a, dominating=b)
                )
            elif np.all(difference >= -REWARD_EPSILON):
                findings.append(
                    _dominated(view, dominated=b, dominating=a)
                )
    return findings


def _dominated(view: ModelView, dominated: int, dominating: int) -> Diagnostic:
    return Diagnostic(
        code="R103",
        message=(
            f"action {view.action_labels[dominated]!r} matches "
            f"{view.action_labels[dominating]!r} in dynamics and "
            "observations but costs more in some state"
        ),
        actions=(
            view.action_labels[dominated],
            view.action_labels[dominating],
        ),
        fix_hint="no policy needs the dominated action; remove it",
    )


def dead_observation_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R104: observation symbols with zero emission probability everywhere."""
    if view.observations is None:
        return []
    if view.is_sparse:
        emittable = view.observations.max_per_observation() > SUPPORT_EPSILON
    else:
        emittable = view.observations.max(axis=(0, 1)) > SUPPORT_EPSILON
    dead = np.flatnonzero(~emittable)
    if not dead.size:
        return []
    labels = [view.observation_labels[o] for o in dead]
    return [
        Diagnostic(
            code="R104",
            message=(
                f"{dead.size} observation symbol(s) can never be emitted "
                f"by any state under any action: {labels[:8]}"
                + (" ..." if dead.size > 8 else "")
            ),
            fix_hint=(
                "dead symbols inflate every belief update by |O|; drop them "
                "from the observation alphabet"
            ),
        )
    ]


def slow_absorption_diagnostics(
    view: ModelView,
    slow_absorption_steps: float = SLOW_ABSORPTION_STEPS,
    *,
    force: bool = False,
) -> list[Diagnostic]:
    """R105: transient states whose random-policy absorption is very slow.

    The RA-Bound charges each transient state roughly its expected
    absorption time worth of average cost; a state that takes
    ``slow_absorption_steps`` expected steps to absorb makes the bound
    finite (Eq. 5 still converges) but extremely loose there.  Sparse
    models route through the sparse transient-state solve
    (:func:`repro.mdp.classify.expected_absorption_time`), so the pass
    covers the 300k-state instance; only beyond
    :data:`SPARSE_SOLVE_SKIP_STATES` does it note a cutoff.
    """
    if view.discount < 1.0:
        return []
    if view.is_sparse and view.n_states > SPARSE_SOLVE_SKIP_STATES and not force:
        return _sparse_skip(
            "slow-absorption (R105)",
            "SPARSE_SOLVE_SKIP_STATES",
            SPARSE_SOLVE_SKIP_STATES,
            view.n_states,
            "the transient-state solve factorises an "
            f"{view.n_states} x {view.n_states} sparse system",
        )
    chain = view.mean_chain()
    times = expected_absorption_time(chain)
    slow = np.flatnonzero(np.isfinite(times) & (times > slow_absorption_steps))
    if not slow.size:
        return []
    worst = int(slow[np.argmax(times[slow])])
    return [
        Diagnostic(
            code="R105",
            message=(
                f"states {_labels_fragment(view.state_labels, slow)} take "
                f"more than {slow_absorption_steps:g} expected random-policy "
                f"steps to absorb (worst: {view.state_labels[worst]!r} at "
                f"{times[worst]:.3g}); the RA-Bound will be very loose there"
            ),
            states=_states_tuple(view.state_labels, slow),
            fix_hint=(
                "raise repair probabilities or add a more direct recovery "
                "action; consider seeding refinement at these states' beliefs"
            ),
        )
    ]


def stats_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R201: descriptive model statistics."""
    if view.is_sparse:
        density = float(
            view.transitions.effective_nnz()
            / max(view.n_actions * view.n_states**2, 1)
        )
    else:
        density = float(
            (view.transitions > SUPPORT_EPSILON).sum()
            / max(view.transitions.size, 1)
        )
    parts = [
        f"|S|={view.n_states}",
        f"|A|={view.n_actions}",
        f"|O|={view.n_observations}" if view.observations is not None else "|O|=0",
        f"discount={view.discount:g}",
        f"transition density={density:.3f}",
    ]
    if view.null_states is not None:
        parts.append(f"|S_phi|={int(view.null_states.sum())}")
    if view.recovery_notification is not None:
        parts.append(
            "recovery notification (Figure 2(a))"
            if view.recovery_notification
            else "terminate pair (Figure 2(b))"
        )
    return [Diagnostic(code="R201", message=", ".join(parts))]


def scc_diagnostics(view: ModelView) -> list[Diagnostic]:
    """R202: SCC decomposition of the union graph and the uniform chain.

    Uses the vectorised label/size summary
    (:func:`repro.mdp.classify.scc_summary`) on both backends, so no
    per-component Python set is ever materialised — the pass runs on the
    300k-state union graph in one ``csgraph`` sweep.
    """
    union_summary = scc_summary(view.union_graph())
    chain = view.mean_chain()
    chain_summary = scc_summary(chain)
    if view.is_sparse:
        diagonal = np.asarray(chain.diagonal()).ravel()
    else:
        diagonal = np.diag(chain)
    absorbing = int((diagonal >= 1.0 - EDGE_EPSILON).sum())
    sizes = sorted(union_summary.sizes.tolist(), reverse=True)
    recurrent_classes = int(chain_summary.closed.sum())
    recurrent_states = int(chain_summary.sizes[chain_summary.closed].sum())
    return [
        Diagnostic(
            code="R202",
            message=(
                f"union graph has {union_summary.count} SCC(s) "
                f"(sizes {sizes[:8]}{' ...' if len(sizes) > 8 else ''}); "
                f"uniform-random chain has "
                f"{recurrent_classes} recurrent class(es) "
                f"over {recurrent_states} state(s), "
                f"{absorbing} absorbing"
            ),
        )
    ]


#: The full pipeline, in report order (errors, warnings, info).
_PASSES = (
    stochasticity_diagnostics,
    condition_1_diagnostics,
    condition_2_diagnostics,
    null_rewiring_diagnostics,
    terminate_wiring_diagnostics,
    ra_finiteness_diagnostics,
    unreachable_diagnostics,
    duplicate_action_diagnostics,
    dead_observation_diagnostics,
    slow_absorption_diagnostics,
    stats_diagnostics,
    scc_diagnostics,
)

#: Passes that accept ``force=`` to override their R203 size cutoffs.
_FORCEABLE = (
    null_rewiring_diagnostics,
    ra_finiteness_diagnostics,
    duplicate_action_diagnostics,
    slow_absorption_diagnostics,
)


def analyze(model, title: str | None = None, force: bool = False) -> AnalysisReport:
    """Run every pass over ``model`` and return the aggregated report.

    Args:
        model: an :class:`~repro.mdp.MDP`, :class:`~repro.pomdp.POMDP`,
            :class:`~repro.recovery.RecoveryModel`, or a prepared
            :class:`~repro.analysis.view.ModelView`.
        title: report heading; derived from the model shape when omitted.
        force: run passes past their R203 size cutoffs (may be slow on
            adversarially large instances).
    """
    view = model if isinstance(model, ModelView) else ModelView.from_model(model)
    findings: list[Diagnostic] = []
    for check in _PASSES:
        if check in _FORCEABLE:
            findings.extend(check(view, force=force))
        else:
            findings.extend(check(view))
    if title is None:
        kind = "recovery model" if view.null_states is not None else (
            "POMDP" if view.observations is not None else "MDP"
        )
        title = (
            f"{kind} ({view.n_states} states, {view.n_actions} actions"
            + (
                f", {view.n_observations} observations"
                if view.observations is not None
                else ""
            )
            + ")"
        )
    return AnalysisReport(findings=tuple(findings), title=title)
