"""Determinism lint (R9xx): rule positives/negatives, suppressions, CLI."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.codelint import lint_paths, lint_source, main


def _codes(source: str) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(source))]


class TestR901UnseededRandom:
    def test_global_numpy_sampler(self):
        assert _codes(
            """
            import numpy as np
            x = np.random.uniform(0, 1)
            """
        ) == ["R901"]

    def test_numpy_random_module_alias(self):
        assert _codes(
            """
            import numpy.random as npr
            x = npr.normal()
            """
        ) == ["R901"]

    def test_stdlib_global_sampler(self):
        assert _codes(
            """
            import random
            x = random.choice([1, 2])
            """
        ) == ["R901"]

    def test_stdlib_from_import(self):
        assert _codes(
            """
            from random import shuffle
            shuffle(items)
            """
        ) == ["R901"]

    def test_argless_default_rng(self):
        assert _codes(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        ) == ["R901"]

    def test_seeded_default_rng_is_clean(self):
        assert _codes(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.uniform(0, 1)
            """
        ) == []

    def test_generator_methods_are_clean(self):
        """Samplers on an explicit Generator object don't match the rule."""
        assert _codes(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal()
            y = rng.choice([1, 2])
            """
        ) == []

    def test_seeded_stdlib_instance_is_clean(self):
        assert _codes(
            """
            import random
            rng = random.Random(7)
            x = rng.random()
            """
        ) == []


class TestR902SetIteration:
    def test_for_over_set_literal(self):
        assert _codes(
            """
            for x in {1, 2, 3}:
                print(x)
            """
        ) == ["R902"]

    def test_for_over_set_call(self):
        assert _codes(
            """
            for x in set(items):
                handle(x)
            """
        ) == ["R902"]

    def test_comprehension_over_frozenset(self):
        assert _codes("out = [f(x) for x in frozenset(items)]") == ["R902"]

    def test_set_union_operator(self):
        assert _codes(
            """
            for x in set(a) | set(b):
                handle(x)
            """
        ) == ["R902"]

    def test_sorted_wrapper_is_clean(self):
        assert _codes(
            """
            for x in sorted(set(items)):
                handle(x)
            """
        ) == []

    def test_list_iteration_is_clean(self):
        assert _codes(
            """
            for x in [1, 2, 3]:
                print(x)
            """
        ) == []


class TestR903WallClock:
    def test_time_time(self):
        assert _codes(
            """
            import time
            t = time.time()
            """
        ) == ["R903"]

    def test_perf_counter_from_import(self):
        assert _codes(
            """
            from time import perf_counter
            t = perf_counter()
            """
        ) == ["R903"]

    def test_datetime_now(self):
        assert _codes(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        ) == ["R903"]

    def test_datetime_module_utcnow(self):
        assert _codes(
            """
            import datetime
            stamp = datetime.datetime.utcnow()
            """
        ) == ["R903"]

    def test_unrelated_now_attribute_is_clean(self):
        assert _codes(
            """
            stamp = clock.now()
            """
        ) == []

    def test_sleep_is_clean(self):
        """time.sleep does not *read* the clock."""
        assert _codes(
            """
            import time
            time.sleep(0.1)
            """
        ) == []


class TestSuppressions:
    def test_inline_ignore(self):
        assert _codes(
            """
            import time
            t = time.time()  # codelint: ignore[R903]
            """
        ) == []

    def test_inline_ignore_wrong_code_does_not_silence(self):
        assert _codes(
            """
            import time
            t = time.time()  # codelint: ignore[R901]
            """
        ) == ["R903"]

    def test_inline_ignore_multiple_codes(self):
        assert _codes(
            """
            import time, random
            t = time.time() + random.random()  # codelint: ignore[R901, R903]
            """
        ) == []

    def test_skip_file(self):
        assert _codes(
            """
            # codelint: skip-file
            import time
            t = time.time()
            """
        ) == []

    def test_locations_are_path_line(self):
        findings = lint_source(
            "import time\nt = time.time()\n", path="pkg/mod.py"
        )
        assert findings[0].location == "pkg/mod.py:2"


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = sorted({1, 2})\n")
        assert main([str(tmp_path)]) == 0
        assert "0 determinism finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R903" in out and "bad.py:2" in out

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path)]) == 2
        capsys.readouterr()

    def test_single_file_target(self, tmp_path, capsys):
        target = tmp_path / "one.py"
        target.write_text("import random\nrandom.seed(1)\n")
        assert main([str(target)]) == 1
        capsys.readouterr()

    def test_report_order_is_deterministic(self, tmp_path, capsys):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("import time\nt = time.time()\n")
        main([str(tmp_path)])
        out = capsys.readouterr().out
        assert out.index("a.py") < out.index("b.py") < out.index("c.py")


class TestRealTreeIsClean:
    def test_src_has_no_determinism_findings(self):
        src = Path(__file__).resolve().parent.parent / "src"
        report = lint_paths([src])
        offenders = [d for d in report.findings if d.code.startswith("R9")]
        assert not offenders, "\n".join(d.format() for d in offenders)
        assert report.exit_code == 0


class TestR904HotPathRowIteration:
    HOT = "src/repro/pomdp/tree.py"
    COLD = "src/repro/sim/engine.py"

    @staticmethod
    def _codes_at(source, path):
        return [d.code for d in lint_source(textwrap.dedent(source), path=path)]

    def test_loop_over_matrix_producer_call(self):
        assert self._codes_at(
            """
            import numpy as np
            for row in np.atleast_2d(beliefs):
                handle(row)
            """,
            self.HOT,
        ) == ["R904"]

    def test_loop_over_name_assigned_from_matrix_producer(self):
        assert self._codes_at(
            """
            import numpy as np
            stack = np.vstack([a, b])
            for row in stack:
                handle(row)
            """,
            self.HOT,
        ) == ["R904"]

    def test_loop_over_vectors_attribute(self):
        assert self._codes_at(
            """
            for vector in leaf.vectors:
                total += vector @ belief
            """,
            self.HOT,
        ) == ["R904"]

    def test_comprehension_over_matrix(self):
        assert self._codes_at(
            """
            import numpy as np
            rows = np.stack(parts)
            out = [f(r) for r in rows]
            """,
            self.HOT,
        ) == ["R904"]

    def test_bounds_paths_are_hot(self):
        assert self._codes_at(
            """
            for vector in bound.vectors:
                use(vector)
            """,
            "src/repro/bounds/incremental.py",
        ) == ["R904"]

    def test_non_hot_path_is_clean(self):
        assert self._codes_at(
            """
            import numpy as np
            for row in np.atleast_2d(beliefs):
                handle(row)
            """,
            self.COLD,
        ) == []

    def test_default_path_is_not_hot(self):
        assert _codes(
            """
            import numpy as np
            for row in np.atleast_2d(beliefs):
                handle(row)
            """
        ) == []

    def test_list_iteration_in_hot_path_is_clean(self):
        assert self._codes_at(
            """
            for action in actions:
                handle(action)
            """,
            self.HOT,
        ) == []

    def test_inline_ignore_silences(self):
        assert self._codes_at(
            """
            import numpy as np
            stack = np.vstack(parts)
            for row in stack:  # codelint: ignore[R904]
                handle(row)
            """,
            self.HOT,
        ) == []
