"""The joint-factor compute cache (:mod:`repro.pomdp.cache`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pomdp.cache import (
    MAX_CACHE_BYTES,
    MAX_CACHE_BYTES_ENV,
    JointFactorCache,
    cache_size_bytes,
    clear_caches,
    get_joint_cache,
    max_cache_bytes,
)
from tests.conftest import random_pomdp


@pytest.fixture(autouse=True)
def _fresh_registry():
    clear_caches()
    yield
    clear_caches()


def _manual_joint(pomdp, belief, action):
    """The uncached two-product reference: predict, then factor in q."""
    predicted = belief @ pomdp.transitions[action]
    return predicted[:, None] * pomdp.observations[action]


class TestJointFactorCache:
    def test_joint_matches_two_product_path(self):
        rng = np.random.default_rng(0)
        pomdp = random_pomdp(rng, n_states=5, n_actions=4, n_observations=3)
        cache = JointFactorCache(pomdp)
        for _ in range(5):
            belief = rng.dirichlet(np.ones(pomdp.n_states))
            for action in range(pomdp.n_actions):
                assert np.allclose(
                    cache.joint(belief, action),
                    _manual_joint(pomdp, belief, action),
                )

    def test_joint_all_consistent_with_joint(self):
        rng = np.random.default_rng(1)
        pomdp = random_pomdp(rng, n_states=6, n_actions=3, n_observations=4)
        cache = JointFactorCache(pomdp)
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        stacked = cache.joint_all(belief)
        assert stacked.shape == (
            pomdp.n_actions,
            pomdp.n_states,
            pomdp.n_observations,
        )
        for action in range(pomdp.n_actions):
            assert np.array_equal(stacked[action], cache.joint(belief, action))

    def test_joint_columns_sum_to_observation_likelihoods(self):
        """Summing the joint over s' gives gamma, the per-observation
        normaliser of Eq. 4 — the quantity the tree's children need."""
        rng = np.random.default_rng(2)
        pomdp = random_pomdp(rng)
        cache = JointFactorCache(pomdp)
        belief = rng.dirichlet(np.ones(pomdp.n_states))
        gamma = cache.joint(belief, 0).sum(axis=0)
        assert np.isclose(gamma.sum(), 1.0)


class TestRegistry:
    def test_same_model_returns_same_cache(self):
        pomdp = random_pomdp(np.random.default_rng(3))
        assert get_joint_cache(pomdp) is get_joint_cache(pomdp)

    def test_distinct_models_get_distinct_caches(self):
        rng = np.random.default_rng(4)
        first, second = random_pomdp(rng), random_pomdp(rng)
        assert get_joint_cache(first) is not get_joint_cache(second)

    def test_size_gate_declines_large_models(self):
        pomdp = random_pomdp(np.random.default_rng(5))
        assert get_joint_cache(pomdp, max_bytes=8) is None

    def test_budget_precedence(self, monkeypatch):
        """Explicit max_bytes wins over REPRO_MAX_CACHE_BYTES, which wins
        over the compile-time default."""
        monkeypatch.delenv(MAX_CACHE_BYTES_ENV, raising=False)
        assert max_cache_bytes() == MAX_CACHE_BYTES
        monkeypatch.setenv(MAX_CACHE_BYTES_ENV, "12345")
        assert max_cache_bytes() == 12345
        assert max_cache_bytes(99) == 99

    def test_env_var_declines_caching(self, monkeypatch):
        monkeypatch.setenv(MAX_CACHE_BYTES_ENV, "8")
        pomdp = random_pomdp(np.random.default_rng(8))
        assert get_joint_cache(pomdp) is None
        monkeypatch.delenv(MAX_CACHE_BYTES_ENV)
        assert get_joint_cache(pomdp) is not None

    def test_cache_size_accounting(self):
        pomdp = random_pomdp(np.random.default_rng(6))
        cache = get_joint_cache(pomdp)
        assert cache.nbytes == cache_size_bytes(pomdp)

    def test_entry_dropped_when_model_collected(self):
        import gc

        from repro.pomdp import cache as cache_module

        pomdp = random_pomdp(np.random.default_rng(7))
        get_joint_cache(pomdp)
        key = id(pomdp)
        assert key in cache_module._CACHES
        del pomdp
        gc.collect()
        assert key not in cache_module._CACHES


class TestChargeBlock:
    def test_block_within_budget_is_accepted(self):
        from repro.pomdp.cache import charge_block

        assert charge_block(1024, n_states=10)

    def test_block_over_budget_is_declined(self):
        from repro.pomdp.cache import charge_block

        assert not charge_block(MAX_CACHE_BYTES + 1, n_states=10)

    def test_explicit_budget_overrides_default(self):
        from repro.pomdp.cache import charge_block

        assert not charge_block(100, n_states=4, max_bytes=50)
        assert charge_block(100, n_states=4, max_bytes=200)

    def test_env_budget_applies(self, monkeypatch):
        from repro.pomdp.cache import charge_block

        monkeypatch.setenv(MAX_CACHE_BYTES_ENV, "0")
        assert not charge_block(1, n_states=2)

    def test_decline_emits_counter_and_event(self):
        from repro.obs import session
        from repro.pomdp.cache import charge_block

        with session() as telemetry:
            charge_block(10, n_states=7, kind="tree.depth1_block", max_bytes=5)
        assert telemetry.process_counters["cache.declines"] == 1
        declines = [
            r
            for r in telemetry.snapshot().events
            if r["event"] == "cache_decline"
        ]
        assert len(declines) == 1
        assert declines[0]["n_states"] == 7
        assert declines[0]["required_bytes"] == 10
        assert declines[0]["limit_bytes"] == 5
        assert declines[0]["kind"] == "tree.depth1_block"

    def test_accept_is_silent(self):
        from repro.obs import session
        from repro.pomdp.cache import charge_block

        with session() as telemetry:
            charge_block(10, n_states=3, max_bytes=100)
        assert "cache.declines" not in telemetry.process_counters
