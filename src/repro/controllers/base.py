"""The controller protocol shared by every recovery strategy.

A controller's life cycle, mirroring Section 4's description of the decision
loop: ``reset()`` at fault-detection time, then alternating ``observe()``
(Bayesian belief update with the latest monitor outputs, Eq. 4) and
``decide()`` (choose the next recovery action) until a decision with
``is_terminate`` set ends the episode.  The campaign driver in
:mod:`repro.sim` owns the loop; controllers only own belief tracking and
action selection, and they never see the true system state (except the
oracle, which overrides the hook provided for it).

Since the engine/session split (:mod:`repro.controllers.engine`) a
controller is a *thin adapter*: the shared, immutable-after-warmup policy
state lives in a :class:`~repro.controllers.engine.PolicyEngine` and the
per-episode mutable state in one live
:class:`~repro.controllers.engine.RecoverySession`, exposed as
:attr:`RecoveryController.session`.  Every legacy method (``reset`` /
``observe`` / ``decide`` / ``belief`` / ``stopwatch``) forwards to that
session, so existing drivers and tests are unaffected.  Subclasses choose
one of two shapes:

* **engine-backed** (the shipped controllers): build a concrete engine and
  pass it as ``engine=``; the adapter inherits its name, preflight report,
  and decision logic.
* **callback** (legacy / ad-hoc subclasses): pass a ``model`` and override
  ``_decide`` (plus optionally ``_on_reset`` / ``sync_true_state``); the
  base wires up a private :class:`_CallbackEngine` that routes session
  decisions back through the override.  Nothing about the classic
  subclassing contract changed.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.engine import (
    NO_ACTION,
    Decision,
    PolicyEngine,
    RecoverySession,
)
from repro.exceptions import ControllerError
from repro.recovery.model import RecoveryModel
from repro.util.timing import Stopwatch

__all__ = [
    "NO_ACTION",
    "Decision",
    "RecoveryController",
]


class _CallbackEngine(PolicyEngine):
    """Adapter engine that routes decisions through a legacy controller.

    Subclasses of :class:`RecoveryController` that predate the
    engine/session split implement ``_decide(belief)`` (and optionally
    ``_on_reset`` / ``sync_true_state``) on the controller itself.  This
    engine keeps that contract alive: it holds a back-reference to the
    controller and forwards every session hook to the classic override
    points.  It is private to its adapter — it serves exactly the one
    session the adapter owns.
    """

    def __init__(
        self,
        controller: RecoveryController,
        model: RecoveryModel,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        self._controller = controller
        # The monitor opt-out is a class-level declaration on legacy
        # controllers; mirror it onto the engine so sessions report it.
        self.uses_monitors = bool(getattr(type(controller), "uses_monitors", True))

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._controller.name

    def decide(self, session: RecoverySession) -> Decision:
        return self._controller._decide(session.belief_view())

    def on_reset(self, session: RecoverySession) -> None:
        self._controller._on_reset()

    def on_true_state(self, session: RecoverySession, state: int) -> None:
        # Route through the controller so legacy overrides (the classic
        # oracle pattern) still fire when the *session* is being driven.
        # The base implementation writes session.true_state directly, so
        # this cannot recurse.
        self._controller.sync_true_state(state)


class RecoveryController:
    """Thin adapter binding one :class:`PolicyEngine` to one live session."""

    #: Display name used in experiment tables (subclasses override).
    name: str = "controller"

    #: The campaign skips monitor invocations for controllers that opt out
    #: (class-level declaration; the oracle sets it False).
    uses_monitors: bool = True

    #: Integer diagnostic counters that accumulate across a campaign's
    #: episodes (subclasses list attribute names here).  The campaign
    #: engine runs episodes on controller clones; it reads this to merge
    #: each chunk's counter deltas back into the caller's controller.
    CAMPAIGN_COUNTERS: tuple[str, ...] = ()

    def refinement_state(self):
        """The mutable bound-vector set this controller refines, if any.

        The campaign engine merges the refinements its controller clones
        produce back into this object (see :mod:`repro.sim.parallel`).
        Defaults to the engine's :meth:`PolicyEngine.refinement_state`;
        subclasses with a differently-named set override this, and
        returning ``None`` opts out of refinement merging.
        """
        state = getattr(self, "bound_set", None)
        if state is not None:
            return state
        return self.engine.refinement_state()

    def __init__(
        self,
        model: RecoveryModel | None = None,
        preflight: bool = False,
        *,
        engine: PolicyEngine | None = None,
    ):
        """Args:
            model: the (augmented) recovery model to control.  Required on
                the legacy callback path; ignored when ``engine`` is given
                (the engine owns the model).
            preflight: run the static analyzer over the model before the
                first action can be taken.  Error findings raise
                :class:`~repro.exceptions.AnalysisError` (carrying the full
                report); otherwise the report is kept on
                :attr:`preflight_report` so operators can surface warnings
                (loose bounds, dead observations) at deployment time.
            engine: a prebuilt :class:`PolicyEngine` to adapt (the shipped
                controllers construct their concrete engine and pass it
                here).  When None, a :class:`_CallbackEngine` is wired up
                around this instance's ``_decide`` override.
        """
        if engine is None:
            if model is None:
                raise ControllerError(
                    "RecoveryController needs a model (legacy callback "
                    "path) or an engine"
                )
            engine = _CallbackEngine(self, model, preflight=preflight)
        else:
            self.name = engine.name
        self.engine = engine
        self.preflight_report = engine.preflight_report
        self.session: RecoverySession = engine.session()

    # -- session pass-throughs ------------------------------------------------

    @property
    def model(self) -> RecoveryModel:
        """The engine's (shared) recovery model."""
        return self.engine.model

    @property
    def stopwatch(self) -> Stopwatch:
        """The live session's decision stopwatch ("algorithm time")."""
        return self.session.stopwatch

    def reset(self, initial_belief: np.ndarray | None = None) -> None:
        """Start a new recovery episode (see :meth:`RecoverySession.reset`)."""
        self.session.reset(initial_belief)

    @property
    def belief(self) -> np.ndarray:
        """The controller's current belief state (copy)."""
        return self.session.belief

    @property
    def done(self) -> bool:
        """True once the controller has terminated the current episode."""
        return self.session.done

    def observe(self, action: int, observation: int) -> None:
        """Fold the monitor outputs after ``action`` into the belief (Eq. 4)."""
        self.session.observe(action, observation)

    def decide(self) -> Decision:
        """Choose the next action; timed for the "algorithm time" metric."""
        return self.session.decide()

    def _terminate_decision(self, value: float | None = None) -> Decision:
        """A terminating decision that executes ``a_T`` where the model has one.

        Forwarded to :meth:`PolicyEngine.terminate_decision`; kept as a
        method so legacy ``_decide`` overrides keep their exit idiom.
        """
        return self.engine.terminate_decision(value=value)

    def sync_true_state(self, state: int) -> None:
        """Ground-truth hook; records the state on the session.

        The campaign calls this after every environment transition.  Honest
        controllers never read it back — only the oracle engine does (it
        models omniscient diagnosis, not something a real controller could
        do).  Legacy oracle-style subclasses may still override this method
        directly.
        """
        self.session.true_state = int(state)

    # -- legacy subclass responsibilities -------------------------------------

    def _on_reset(self) -> None:
        """Per-episode subclass state reset (optional, callback path)."""

    def _decide(self, belief: np.ndarray) -> Decision:
        """Choose an action for ``belief`` (already guarded and timed).

        Only the legacy callback path reaches this; engine-backed
        controllers decide inside their engine.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must either override _decide() or be "
            "constructed with an engine"
        )
