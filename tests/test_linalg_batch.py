"""Batched linalg primitives against their looped scalar counterparts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.ops import (
    BACKUP_TIE_EPSILON,
    GAMMA_EPSILON,
    belief_update_batch,
    bellman_backup_envelope,
    observation_probabilities_batch,
    observation_probabilities_from_predicted,
    predict,
    predict_batch,
    tie_break_argmax,
)
from repro.systems.emn import build_emn_system
from repro.systems.tiered import build_tiered_system
from tests.conftest import random_pomdp


@pytest.fixture(scope="module", params=["dense", "tiered", "emn"])
def pomdp(request):
    if request.param == "dense":
        rng = np.random.default_rng(7)
        return random_pomdp(rng, n_states=6, n_actions=4, n_observations=3)
    if request.param == "tiered":
        return build_tiered_system(replicas=(2, 2, 2), backend="sparse").model.pomdp
    return build_emn_system(backend="sparse").model.pomdp


def _beliefs(pomdp, m=5, seed=13):
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.ones(pomdp.n_states), size=m)


class TestTieBreakArgmax:
    def test_exact_argmax_when_scores_are_separated(self):
        scores = np.array([0.1, 0.9, 0.3])
        assert tie_break_argmax(scores) == 1

    def test_ties_break_toward_the_lowest_index(self):
        scores = np.array([0.5, 0.5 + BACKUP_TIE_EPSILON / 2, 0.2])
        assert tie_break_argmax(scores) == 0

    def test_outside_tolerance_is_not_a_tie(self):
        scores = np.array([0.5, 0.5 + 2 * BACKUP_TIE_EPSILON])
        assert tie_break_argmax(scores) == 1

    def test_axis_zero_over_columns(self):
        scores = np.array([[1.0, 0.0], [1.0, 1.0]])
        winners = tie_break_argmax(scores, axis=0)
        assert winners.tolist() == [0, 1]  # column 0 ties toward row 0

    def test_three_dimensional_input(self):
        scores = np.zeros((2, 3, 4))
        scores[1, 2, 3] = 1.0
        winners = tie_break_argmax(scores, axis=0)
        assert winners.shape == (3, 4)
        assert winners[2, 3] == 1
        assert winners[0, 0] == 0


class TestPredictBatch:
    def test_rows_match_looped_predict(self, pomdp):
        """Sparse rows are bit-identical (scipy evaluates CSR × dense-block
        column by column with the matvec kernel); dense GEMM vs GEMV may
        re-associate, so the dense check allows one ulp of drift."""
        exact = pomdp.backend.is_sparse
        beliefs = _beliefs(pomdp)
        for action in range(pomdp.n_actions):
            batched = predict_batch(pomdp.transitions, beliefs, action)
            for i, belief in enumerate(beliefs):
                looped = predict(pomdp.transitions, belief, action)
                if exact:
                    np.testing.assert_array_equal(batched[i], looped)
                else:
                    np.testing.assert_allclose(batched[i], looped, rtol=1e-15)

    def test_single_belief_may_be_one_dimensional(self, pomdp):
        belief = _beliefs(pomdp, m=1)[0]
        batched = predict_batch(pomdp.transitions, belief, action=0)
        assert batched.shape == (1, pomdp.n_states)
        np.testing.assert_array_equal(
            batched[0], predict(pomdp.transitions, belief, 0)
        )


class TestObservationProbabilitiesBatch:
    def test_rows_match_looped_gamma(self, pomdp):
        beliefs = _beliefs(pomdp)
        for action in range(pomdp.n_actions):
            predicted = predict_batch(pomdp.transitions, beliefs, action)
            batched = observation_probabilities_batch(
                pomdp.observations, predicted, action
            )
            assert batched.shape == (beliefs.shape[0], pomdp.n_observations)
            for i in range(beliefs.shape[0]):
                looped = observation_probabilities_from_predicted(
                    pomdp.observations, predicted[i], action
                )
                if pomdp.backend.is_sparse:
                    np.testing.assert_array_equal(batched[i], looped)
                else:
                    np.testing.assert_allclose(batched[i], looped, rtol=1e-15)


class TestBeliefUpdateBatch:
    def test_shapes(self, pomdp):
        beliefs = _beliefs(pomdp, m=4)
        gamma, posteriors = belief_update_batch(
            pomdp.transitions, pomdp.observations, beliefs, action=0
        )
        assert gamma.shape == (4, pomdp.n_observations)
        assert posteriors.shape == (4, pomdp.n_observations, pomdp.n_states)

    def test_gamma_matches_observation_probabilities(self, pomdp):
        beliefs = _beliefs(pomdp)
        for action in range(pomdp.n_actions):
            gamma, _ = belief_update_batch(
                pomdp.transitions, pomdp.observations, beliefs, action
            )
            predicted = predict_batch(pomdp.transitions, beliefs, action)
            np.testing.assert_array_equal(
                gamma,
                observation_probabilities_batch(
                    pomdp.observations, predicted, action
                ),
            )

    def test_posteriors_match_scalar_bayes_rule(self, pomdp):
        from repro.pomdp.belief import update_belief

        beliefs = _beliefs(pomdp)
        for action in range(pomdp.n_actions):
            gamma, posteriors = belief_update_batch(
                pomdp.transitions, pomdp.observations, beliefs, action
            )
            for i, belief in enumerate(beliefs):
                for obs in range(pomdp.n_observations):
                    if gamma[i, obs] > GAMMA_EPSILON:
                        np.testing.assert_allclose(
                            posteriors[i, obs],
                            update_belief(pomdp, belief, action, obs),
                            atol=1e-13,
                        )
                    else:
                        np.testing.assert_array_equal(
                            posteriors[i, obs], np.zeros(pomdp.n_states)
                        )

    def test_unreachable_branches_are_zeroed_not_nan(self):
        rng = np.random.default_rng(5)
        pomdp = random_pomdp(rng, n_states=3, n_actions=2, n_observations=2)
        # Concentrate all observation probability on symbol 0 everywhere so
        # symbol 1 is unreachable for every action.
        from repro.pomdp.model import POMDP

        observations = np.zeros_like(pomdp.observations)
        observations[:, :, 0] = 1.0
        model = POMDP(
            transitions=pomdp.transitions,
            observations=observations,
            rewards=pomdp.rewards,
            discount=pomdp.discount,
        )
        gamma, posteriors = belief_update_batch(
            model.transitions, model.observations, _beliefs(model, m=3), 0
        )
        assert np.all(gamma[:, 1] == 0.0)
        assert np.all(posteriors[:, 1, :] == 0.0)
        assert np.all(np.isfinite(posteriors))


class TestBellmanBackupEnvelopeBatch:
    def test_rows_match_one_dimensional_calls(self, pomdp):
        rng = np.random.default_rng(17)
        values = -rng.uniform(0.0, 3.0, size=(4, pomdp.n_states))
        batched = bellman_backup_envelope(
            pomdp.transitions, pomdp.rewards, values, pomdp.discount
        )
        assert batched.shape == values.shape
        for j in range(values.shape[0]):
            np.testing.assert_allclose(
                batched[j],
                bellman_backup_envelope(
                    pomdp.transitions, pomdp.rewards, values[j], pomdp.discount
                ),
                atol=1e-12,
            )

    def test_one_dimensional_shape_is_preserved(self, pomdp):
        values = np.zeros(pomdp.n_states)
        backed = bellman_backup_envelope(
            pomdp.transitions, pomdp.rewards, values, pomdp.discount
        )
        assert backed.shape == (pomdp.n_states,)
