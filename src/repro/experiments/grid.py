"""Resumable, checkpointed campaign grid runner.

The ROADMAP's "campaign grid platform": sweep controllers × scenarios ×
seeds × backends as individually fingerprinted cells, persist each
completed cell into an append-only :class:`~repro.experiments.store.ResultsStore`,
and on restart skip completed cells — re-running only the incomplete rest,
with campaign fingerprints bit-identical to an uninterrupted run.

A *cell* is one deterministic unit of evaluation:

* ``table1`` cells run one fault-injection campaign of a named Table 1
  controller on the EMN system (zombie faults, paper monitor tail);
* ``robustness`` cells run the bounded controller (model coverage 1.0)
  against an environment whose path monitors actually achieve
  ``coverage-X`` — the model-mismatch sweep;
* ``fig5`` cells run one bootstrap-refinement trace (``random`` /
  ``average``) and fingerprint the refined bound-vector set.

Every cell re-derives all of its randomness from ``(experiment, variant,
seed)`` alone, and each campaign runs through the deterministic engine of
:mod:`repro.sim.parallel` (per-cell chunk scheduling, shared-memory model
handoff for sparse backends), so a cell's fingerprint is independent of
worker count, of which other cells ran before it, and of how many times
the sweep was interrupted and resumed.  Refined bound sets are persisted
per cell through the crash-safe :mod:`repro.io` writer, so bootstrap
refinement amortises across restarts exactly as Section 4.3's off-line
framing intends.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.bounds.vector_set import BoundVectorSet
from repro.controllers.bootstrap import bootstrap_bounds
from repro.controllers.bounded import BoundedController
from repro.experiments.store import GRID_SCHEMA, ResultsStore
from repro.io import save_bound_set
from repro.obs.telemetry import active as telemetry_active
from repro.recovery.model import convert_backend
from repro.sim.campaign import run_campaign
from repro.sim.metrics import campaign_fingerprint
from repro.systems.emn import MONITOR_DURATION, build_emn_system
from repro.systems.faults import FaultKind
from repro.util.timing import Stopwatch

#: Table 1 controllers swept by default.  Depth 2/3 heuristics are omitted
#: (they are orders of magnitude slower per decision and add no coverage
#: to the grid smoke); name them explicitly to include them.
DEFAULT_CONTROLLERS = (
    "most likely",
    "heuristic (depth 1)",
    "bounded (depth 1)",
    "oracle",
)

#: Bootstrap variants of the Figure 5 experiment.
FIG5_VARIANTS = ("random", "average")

#: Environment-side path-monitor coverages of the robustness sweep.
ROBUSTNESS_COVERAGES = (1.0, 0.9, 0.75, 0.5)

#: Experiments the grid knows how to expand into cells.
EXPERIMENTS = ("table1", "fig5", "robustness")

#: Controllers that require the dense tensor backend (the most-likely
#: baseline scans the full transition tensor for surely-fixing actions);
#: :func:`expand_cells` drops their non-dense cells instead of failing
#: mid-sweep.
DENSE_ONLY_CONTROLLERS = ("most likely",)


def _slug(text: str) -> str:
    """``"bounded (depth 1)"`` → ``"bounded_depth_1"`` (cell-id segments)."""
    slug = "".join(ch if ch.isalnum() or ch in ".-" else "_" for ch in text.lower())
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug.strip("_")


@dataclass(frozen=True)
class GridCell:
    """One fingerprintable unit of the sweep matrix."""

    experiment: str
    variant: str
    seed: int
    backend: str
    injections: int

    @property
    def cell_id(self) -> str:
        """Stable identifier; the checkpoint key in the results store."""
        return "/".join(
            (
                self.experiment,
                _slug(self.variant),
                f"seed{self.seed}",
                self.backend,
                f"n{self.injections}",
            )
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "variant": self.variant,
            "seed": self.seed,
            "backend": self.backend,
            "injections": self.injections,
        }


@dataclass(frozen=True)
class GridSpec:
    """The sweep matrix: experiments × variants × seeds × backends.

    ``injections`` scales the campaign cells; ``iterations`` scales the
    fig5 bootstrap cells.  Cell expansion is deterministic in the order
    the axes are given, so two processes with the same spec agree on the
    cell list (and hence on the grid fingerprint) exactly.
    """

    experiments: tuple[str, ...] = ("table1",)
    controllers: tuple[str, ...] = DEFAULT_CONTROLLERS
    variants: tuple[str, ...] = FIG5_VARIANTS
    coverages: tuple[float, ...] = ROBUSTNESS_COVERAGES
    seeds: tuple[int, ...] = (2006,)
    backends: tuple[str, ...] = ("dense",)
    injections: int = 200
    iterations: int = 10

    def __post_init__(self) -> None:
        unknown = [e for e in self.experiments if e not in EXPERIMENTS]
        if unknown:
            raise ValueError(
                f"unknown experiments {unknown}: expected a subset of "
                f"{list(EXPERIMENTS)}"
            )
        if self.injections <= 0 or self.iterations <= 0:
            raise ValueError("injections and iterations must be positive")


def expand_cells(spec: GridSpec) -> list[GridCell]:
    """The spec's cell list, in deterministic sweep order (deduplicated)."""
    cells: list[GridCell] = []
    seen: set[str] = set()
    for experiment in spec.experiments:
        if experiment == "table1":
            variants: tuple[str, ...] = spec.controllers
            scale = spec.injections
        elif experiment == "fig5":
            variants = spec.variants
            scale = spec.iterations
        else:
            variants = tuple(
                f"coverage-{coverage:g}" for coverage in spec.coverages
            )
            scale = spec.injections
        for variant in variants:
            for seed in spec.seeds:
                for backend in spec.backends:
                    if (
                        experiment == "table1"
                        and variant in DENSE_ONLY_CONTROLLERS
                        and backend != "dense"
                    ):
                        continue
                    cell = GridCell(
                        experiment=experiment,
                        variant=variant,
                        seed=seed,
                        backend=backend,
                        injections=scale,
                    )
                    if cell.cell_id not in seen:
                        seen.add(cell.cell_id)
                        cells.append(cell)
    return cells


def bound_set_fingerprint(bound_set: BoundVectorSet) -> str:
    """SHA-256 over the exact bytes of a bound set's vector stack.

    Bit-stable across runs and restarts of the *same* cell (the resume
    contract).  Dense and sparse backends make identical refinement
    decisions but sum matvec products in different orders, so a dense and
    a sparse fig5 cell agree to ~1e-12 yet hash differently — which is
    why the backend is part of the cell identity rather than collapsed.
    """
    vectors = np.ascontiguousarray(
        np.atleast_2d(bound_set.vectors), dtype=np.float64
    )
    digest = hashlib.sha256()
    digest.update(struct.pack("<qq", *vectors.shape))
    digest.update(vectors.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class CellOutcome:
    """Everything a freshly run cell produces."""

    cell: GridCell
    fingerprint: str
    metrics: dict[str, float]
    bound_set: BoundVectorSet | None
    wall_seconds: float


def _campaign_metrics(summary) -> dict[str, float]:
    """The deterministic scalar metrics of a campaign summary."""
    return {
        "cost": summary.cost,
        "recovery_time": summary.recovery_time,
        "residual_time": summary.residual_time,
        "actions": summary.actions,
        "monitor_calls": summary.monitor_calls,
        "early_terminations": float(summary.early_terminations),
        "unrecovered": float(summary.unrecovered),
    }


def _chunk_counter() -> Callable[..., None] | None:
    """An ``on_chunk`` hook counting completed campaign chunks, if tracing.

    Chunks are the grid's scheduling unit inside a cell (the deterministic
    chunked engine of :mod:`repro.sim.parallel`); the ``grid.chunks``
    counter makes per-cell progress visible in telemetry reports without
    perturbing the fingerprint contract — the hook runs at join time, in
    chunk order.
    """
    telemetry = telemetry_active()
    if telemetry is None:
        return None

    def on_chunk(index: int, total: int, result) -> None:
        del index, total, result
        telemetry.count("grid.chunks")

    return on_chunk


def _run_table1_cell(cell: GridCell, parallel: int | None) -> CellOutcome:
    from repro.experiments.table1 import make_controller

    system = build_emn_system()
    model = convert_backend(system.model, cell.backend)
    controller = make_controller(cell.variant, system, model=model)
    stopwatch = Stopwatch()
    with stopwatch:
        campaign = run_campaign(
            controller,
            fault_states=system.fault_states(FaultKind.ZOMBIE),
            injections=cell.injections,
            seed=cell.seed,
            monitor_tail=MONITOR_DURATION,
            parallel=parallel,
            on_chunk=_chunk_counter(),
        )
    return CellOutcome(
        cell=cell,
        fingerprint=campaign_fingerprint(campaign.episodes),
        metrics=_campaign_metrics(campaign.summary),
        bound_set=controller.refinement_state(),
        wall_seconds=stopwatch.total_seconds,
    )


def _run_robustness_cell(cell: GridCell, parallel: int | None) -> CellOutcome:
    coverage = float(cell.variant.split("-", 1)[1])
    controller_system = build_emn_system(path_monitor_coverage=1.0)
    environment_system = build_emn_system(path_monitor_coverage=coverage)
    controller_model = convert_backend(controller_system.model, cell.backend)
    environment_model = convert_backend(environment_system.model, cell.backend)
    bound_set, _ = bootstrap_bounds(
        controller_model, iterations=10, depth=2, variant="average", seed=0
    )
    controller = BoundedController(
        controller_model,
        depth=1,
        bound_set=bound_set,
        refine_min_improvement=1.0,
    )
    stopwatch = Stopwatch()
    with stopwatch:
        campaign = run_campaign(
            controller,
            fault_states=environment_system.fault_states(FaultKind.ZOMBIE),
            injections=cell.injections,
            seed=cell.seed,
            monitor_tail=MONITOR_DURATION,
            model=environment_model,
            parallel=parallel,
            on_chunk=_chunk_counter(),
        )
    return CellOutcome(
        cell=cell,
        fingerprint=campaign_fingerprint(campaign.episodes),
        metrics=_campaign_metrics(campaign.summary),
        bound_set=controller.refinement_state(),
        wall_seconds=stopwatch.total_seconds,
    )


def _run_fig5_cell(cell: GridCell, parallel: int | None) -> CellOutcome:
    del parallel  # bootstrap traces are inherently sequential
    system = build_emn_system()
    model = convert_backend(system.model, cell.backend)
    stopwatch = Stopwatch()
    with stopwatch:
        bound_set, trace = bootstrap_bounds(
            model,
            iterations=cell.injections,
            depth=1,
            variant=cell.variant,
            seed=cell.seed,
        )
    return CellOutcome(
        cell=cell,
        fingerprint=bound_set_fingerprint(bound_set),
        metrics={
            "initial_upper_bound": float(-trace.initial_bound),
            "final_upper_bound": float(trace.cost_upper_bounds[-1]),
            "vectors": float(len(bound_set)),
            "updates": float(np.sum(trace.update_counts)),
        },
        bound_set=bound_set,
        wall_seconds=stopwatch.total_seconds,
    )


_CELL_RUNNERS: dict[str, Callable[[GridCell, int | None], CellOutcome]] = {
    "table1": _run_table1_cell,
    "robustness": _run_robustness_cell,
    "fig5": _run_fig5_cell,
}


def run_cell(cell: GridCell, parallel: int | None = None) -> CellOutcome:
    """Run one cell from scratch; deterministic given the cell alone."""
    return _CELL_RUNNERS[cell.experiment](cell, parallel)


@dataclass(frozen=True)
class GridResult:
    """Outcome of (one leg of) a sweep: checkpointed + freshly run cells."""

    spec: GridSpec
    cells: tuple[GridCell, ...]
    records: tuple[dict[str, Any], ...]
    ran: int
    skipped: int

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def complete(self) -> bool:
        """True when every cell of the spec has a record."""
        return len(self.records) == len(self.cells)

    @property
    def fingerprint(self) -> str | None:
        """SHA-256 over all cell fingerprints, in sweep order.

        ``None`` until the sweep is complete.  Because cell fingerprints
        are deterministic and the cell order is a pure function of the
        spec, an interrupted-and-resumed sweep reproduces the fingerprint
        of an uninterrupted one bit for bit.
        """
        if not self.complete:
            return None
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                f"{record['cell_id']}:{record['fingerprint']}\n".encode()
            )
        return digest.hexdigest()


def _cell_record(outcome: CellOutcome, artifact: str | None) -> dict[str, Any]:
    record: dict[str, Any] = {
        "schema": GRID_SCHEMA,
        "cell_id": outcome.cell.cell_id,
        "cell": outcome.cell.as_dict(),
        "fingerprint": outcome.fingerprint,
        "metrics": outcome.metrics,
        "wall_seconds": outcome.wall_seconds,
        "artifact": artifact,
    }
    if outcome.bound_set is not None:
        record["bound_set_fingerprint"] = bound_set_fingerprint(
            outcome.bound_set
        )
    return record


def run_grid(
    spec: GridSpec,
    store: ResultsStore | str,
    parallel: int | None = None,
    on_cell: Callable[[str, GridCell, dict[str, Any] | None], None] | None = None,
) -> GridResult:
    """Run (or resume) the sweep ``spec`` against ``store``.

    Cells already present in the store are skipped; every other cell runs
    from scratch and appends exactly one record on completion — so killing
    the process at any point and re-invoking with the same arguments
    resumes from the checkpoint, re-running only incomplete cells.

    Args:
        spec: the sweep matrix.
        store: a :class:`ResultsStore` or its directory path.
        parallel: worker count for each cell's campaign (the deterministic
            chunked engine of :mod:`repro.sim.parallel`; sparse cells hand
            the model to workers through shared memory).
        on_cell: progress hook, called as ``on_cell(kind, cell, record)``
            with ``kind`` one of ``"skip"`` / ``"run"`` — ``"skip"``
            receives the checkpointed record, ``"run"`` the fresh one.
    """
    if not isinstance(store, ResultsStore):
        store = ResultsStore(store)
    swept = store.sweep_temp()
    del swept
    cells = expand_cells(spec)
    checkpointed = store.completed()
    telemetry = telemetry_active()
    ran = skipped = 0
    records: list[dict[str, Any]] = []
    for cell in cells:
        existing = checkpointed.get(cell.cell_id)
        if existing is not None:
            skipped += 1
            records.append(existing)
            if telemetry is not None:
                telemetry.count("grid.cells_skipped")
            if on_cell is not None:
                on_cell("skip", cell, existing)
            continue
        if telemetry is not None:
            with telemetry.trace_span(
                "grid.cell", category="grid", cell=cell.cell_id
            ):
                outcome = run_cell(cell, parallel=parallel)
        else:
            outcome = run_cell(cell, parallel=parallel)
        artifact = None
        if outcome.bound_set is not None:
            path = store.artifact_path(cell.cell_id)
            save_bound_set(path, outcome.bound_set)
            artifact = str(path.relative_to(store.root))
        record = _cell_record(outcome, artifact)
        store.append(record)
        ran += 1
        records.append(record)
        if telemetry is not None:
            telemetry.count("grid.cells_run")
        if on_cell is not None:
            on_cell("run", cell, record)
    return GridResult(
        spec=spec,
        cells=tuple(cells),
        records=tuple(records),
        ran=ran,
        skipped=skipped,
    )


def format_grid(result: GridResult) -> str:
    """Render a sweep result as a table plus the grid fingerprint."""
    from repro.util.tables import render_table

    rows = []
    for record in result.records:
        metrics = record.get("metrics", {})
        headline = next(
            (
                f"{key}={metrics[key]:.4g}"
                for key in ("cost", "final_upper_bound")
                if key in metrics
            ),
            "",
        )
        rows.append(
            [
                record["cell_id"],
                headline,
                record["fingerprint"][:12],
                f"{record.get('wall_seconds', 0.0):.2f}",
            ]
        )
    table = render_table(
        ["cell", "headline metric", "fingerprint", "wall (s)"],
        rows,
        title=(
            f"Campaign grid: {len(result.records)}/{result.total} cells "
            f"({result.ran} run, {result.skipped} from checkpoint)"
        ),
    )
    fingerprint = result.fingerprint
    status = (
        f"grid fingerprint {fingerprint}"
        if fingerprint
        else "grid incomplete — re-run with the same spec to resume"
    )
    return f"{table}\n\n{status}"


__all__ = [
    "DEFAULT_CONTROLLERS",
    "DENSE_ONLY_CONTROLLERS",
    "EXPERIMENTS",
    "FIG5_VARIANTS",
    "ROBUSTNESS_COVERAGES",
    "CellOutcome",
    "GridCell",
    "GridResult",
    "GridSpec",
    "bound_set_fingerprint",
    "expand_cells",
    "format_grid",
    "run_cell",
    "run_grid",
]
