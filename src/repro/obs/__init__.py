"""``repro.obs`` — campaign-wide observability (telemetry + analytics).

The observability layer answers the questions the Table 1 aggregates and
single-episode traces cannot: where a campaign spends its time, how the
bound-vector set grows (Figure 5(b)'s storage story), why controllers
terminated, whether the solver/cache routing behaves as designed — and,
since v2, how fast the lower bound converges per refinement and whether a
change regressed the measured hot paths.

Six pieces:

* :mod:`repro.obs.telemetry` — the process-local registry (counters,
  gauges, span timers, hierarchical trace spans) and JSONL event sink,
  activated with :func:`session` and read from hot paths with
  :func:`active`;
* :mod:`repro.obs.schema` — the ``repro-obs/v2`` event schema and stream
  validator (v1 streams remain valid);
* :mod:`repro.obs.trace` — exporters for trace spans: Chrome
  ``trace_event`` JSON (``chrome://tracing`` / Perfetto) and
  collapsed-stack flamegraph lines;
* :mod:`repro.obs.convergence` — bound-convergence analytics over
  ``refine`` events (gap vs refinement index and vs wall-clock);
* :mod:`repro.obs.bench` — the canonical benchmark-snapshot schema and
  regression comparison (``bench compare OLD NEW --threshold PCT``);
* :mod:`repro.obs.report` — offline aggregation of a recorded run
  (``python -m repro.obs report run.jsonl``, ``--session ID`` to narrow
  a multi-session daemon stream);
* :mod:`repro.obs.live` — the v3 runtime metrics plane: lock-safe live
  snapshots, Prometheus text exposition, snapshot rings for rates, and
  the ``python -m repro.obs watch SOCKET`` terminal view of a running
  policy daemon.

Instrumentation is off by default; ``python -m repro.experiments
--telemetry PATH [--trace PATH] ...`` turns it on for one experiment run,
and the policy daemon (:mod:`repro.serve`) activates its own registry for
the serve lifetime.
"""

from repro.obs.live import SnapshotRing, render_prometheus, snapshot
from repro.obs.schema import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    validate_event,
    validate_stream,
)
from repro.obs.telemetry import (
    LATENCY_BUCKET_EDGES,
    LatencyHistogram,
    SpanRecord,
    Telemetry,
    TelemetrySnapshot,
    activated,
    active,
    enabled,
    session,
)

__all__ = [
    "LATENCY_BUCKET_EDGES",
    "LatencyHistogram",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "SnapshotRing",
    "SpanRecord",
    "Telemetry",
    "TelemetrySnapshot",
    "activated",
    "active",
    "enabled",
    "render_prometheus",
    "session",
    "snapshot",
    "validate_event",
    "validate_stream",
]
