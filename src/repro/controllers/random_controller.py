"""Uniform-random recovery policy.

Chooses uniformly among the model's recovery actions regardless of belief.
This is exactly the policy whose expected cost the RA-Bound computes
(Section 3.1 constructs the bound "by replacing the non-deterministic
actions with probabilistic transitions with a transition probability of
1/|A|"), so the test suite uses it to validate the bound empirically:
the mean episode reward of this controller can be no better than the
optimal value, and the RA-Bound can be no better than this controller when
evaluated over the *full* action set.  It also serves as the sanity floor
in ablation tables.

The RNG lives on the engine — one stream shared by every session it
serves, exactly the stream the single pre-session controller carried — so
per-chunk engine clones in the campaign driver keep historical draws (and
fingerprints) bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.controllers.base import RecoveryController
from repro.controllers.engine import Decision, PolicyEngine, RecoverySession
from repro.recovery.model import RecoveryModel
from repro.util.rng import as_generator


class RandomPolicyEngine(PolicyEngine):
    """Picks actions uniformly at random.

    Args:
        model: the recovery model.
        include_all_actions: when True the draw covers *every* model action
            (including observe and ``a_T``), which is the exact RA-Bound
            policy; when False only repairing actions are drawn and
            termination falls back to the recovered-probability threshold.
        termination_probability: threshold used when ``a_T`` is excluded.
        seed: RNG seed.
    """

    def __init__(
        self,
        model: RecoveryModel,
        include_all_actions: bool = True,
        termination_probability: float = 0.9999,
        seed=None,
        preflight: bool = False,
    ):
        super().__init__(model, preflight=preflight)
        self._rng = as_generator(seed)
        if include_all_actions:
            self._choices = np.arange(model.pomdp.n_actions)
        else:
            self._choices = np.flatnonzero(model.recovery_actions)
        self.include_all_actions = include_all_actions
        self.termination_probability = termination_probability
        self.name = "random"

    def decide(self, session: RecoverySession) -> Decision:
        belief = session.belief_view()
        if not self.include_all_actions:
            recovered = self.model.recovered_probability(belief)
            if recovered >= self.termination_probability:
                return self.terminate_decision()
        action = int(self._rng.choice(self._choices))
        is_terminate = action == self.model.terminate_action
        if (
            self.model.recovery_notification
            and self.model.recovered_probability(belief) >= 1.0 - 1e-9
        ):
            is_terminate = True
        return Decision(action=action, is_terminate=is_terminate)


class RandomController(RecoveryController):
    """Campaign-facing adapter over a :class:`RandomPolicyEngine`."""

    def __init__(
        self,
        model: RecoveryModel,
        include_all_actions: bool = True,
        termination_probability: float = 0.9999,
        seed=None,
        preflight: bool = False,
    ):
        super().__init__(
            engine=RandomPolicyEngine(
                model,
                include_all_actions=include_all_actions,
                termination_probability=termination_probability,
                seed=seed,
                preflight=preflight,
            )
        )

    @property
    def include_all_actions(self) -> bool:
        return self.engine.include_all_actions

    @property
    def termination_probability(self) -> float:
        return self.engine.termination_probability
