"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_generators(7, 2)
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_reproducible_from_same_seed(self):
        first = [g.integers(0, 1_000_000) for g in spawn_generators(3, 4)]
        second = [g.integers(0, 1_000_000) for g in spawn_generators(3, 4)]
        assert first == second

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_generators(parent, 3)
        assert len(children) == 3
        # The parent stream must remain usable afterwards.
        parent.integers(0, 10)
