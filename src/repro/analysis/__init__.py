"""Static model analysis.

Inspects an :class:`~repro.mdp.MDP`, :class:`~repro.pomdp.POMDP`, or
:class:`~repro.recovery.RecoveryModel` *without solving it* and reports
every violation of the paper's structural preconditions (Conditions 1/2,
the Figure 2 rewirings, Eq. 5 finiteness) plus warnings and statistics —
in contrast to the model constructors, which fail fast on the first
problem.  Every pass is sparse-native, so the full suite runs on
300k-state sparse-backend models without densifying anything.  Run
``python -m repro.analysis --help`` for the CLI.

Two sibling checkers share the diagnostic machinery:
:mod:`repro.analysis.certify` statically certifies persisted bound sets
(R3xx), and :mod:`repro.analysis.codelint` lints the source tree for
determinism hazards (R9xx; ``python -m repro.analysis.codelint src/``).
"""

from repro.analysis.certify import certify_bound_set
from repro.analysis.codelint import lint_paths, lint_source
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.passes import (
    DUPLICATE_PAIR_BUDGET,
    PER_STATE_SCAN_CUTOFF,
    SLOW_ABSORPTION_STEPS,
    SPARSE_SOLVE_SKIP_STATES,
    analyze,
    condition_1_diagnostics,
    condition_2_diagnostics,
    dead_observation_diagnostics,
    duplicate_action_diagnostics,
    null_rewiring_diagnostics,
    ra_finiteness_diagnostics,
    slow_absorption_diagnostics,
    stochasticity_diagnostics,
    terminate_wiring_diagnostics,
    unreachable_diagnostics,
)
from repro.analysis.view import ModelView

__all__ = [
    "CODES",
    "DUPLICATE_PAIR_BUDGET",
    "PER_STATE_SCAN_CUTOFF",
    "SLOW_ABSORPTION_STEPS",
    "SPARSE_SOLVE_SKIP_STATES",
    "AnalysisReport",
    "Diagnostic",
    "ModelView",
    "Severity",
    "analyze",
    "certify_bound_set",
    "condition_1_diagnostics",
    "condition_2_diagnostics",
    "dead_observation_diagnostics",
    "duplicate_action_diagnostics",
    "lint_paths",
    "lint_source",
    "null_rewiring_diagnostics",
    "ra_finiteness_diagnostics",
    "slow_absorption_diagnostics",
    "stochasticity_diagnostics",
    "terminate_wiring_diagnostics",
    "unreachable_diagnostics",
]
