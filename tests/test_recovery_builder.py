"""Tests for the declarative recovery-model builder."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.recovery.builder import RecoveryModelBuilder


def observation_block():
    labels = ("alarm", "clear")
    matrix = np.array(
        [
            [0.0, 1.0],  # null
            [0.7, 0.3],  # fault
        ]
    )
    return labels, matrix


def minimal_builder() -> RecoveryModelBuilder:
    builder = RecoveryModelBuilder()
    builder.add_state("null", rate_cost=0.0, null=True)
    builder.add_state("fault", rate_cost=0.5)
    builder.add_action(
        "repair", duration=2.0, transitions={"fault": {"null": 1.0}}
    )
    builder.add_action("observe", duration=1.0, passive=True)
    labels, matrix = observation_block()
    builder.set_observation_matrix(labels, matrix)
    return builder


class TestHappyPath:
    def test_builds_unnotified_model(self):
        model = minimal_builder().build(
            recovery_notification=False, operator_response_time=10.0
        )
        assert model.pomdp.n_states == 3  # null, fault, s_T
        assert model.pomdp.n_actions == 3  # repair, observe, a_T
        assert model.terminate_action is not None
        assert not model.recovery_notification

    def test_default_cost_is_rate_times_duration(self):
        model = minimal_builder().build(
            recovery_notification=False, operator_response_time=10.0
        )
        fault = model.pomdp.state_index("fault")
        repair = model.pomdp.action_index("repair")
        assert np.isclose(model.pomdp.rewards[repair, fault], -1.0)  # 0.5 * 2

    def test_explicit_costs_override(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "repair",
            duration=2.0,
            transitions={"fault": {"null": 1.0}},
            costs={"fault": 3.0},
        )
        builder.add_action("observe", duration=1.0, passive=True)
        labels, matrix = observation_block()
        builder.set_observation_matrix(labels, matrix)
        model = builder.build(
            recovery_notification=False, operator_response_time=10.0
        )
        fault = model.pomdp.state_index("fault")
        assert np.isclose(model.pomdp.rewards[0, fault], -3.0)

    def test_impulse_costs_added(self):
        builder = minimal_builder()
        builder._actions[0].impulse_costs["fault"] = 0.25
        model = builder.build(
            recovery_notification=False, operator_response_time=10.0
        )
        fault = model.pomdp.state_index("fault")
        assert np.isclose(model.pomdp.rewards[0, fault], -1.25)

    def test_unlisted_states_self_loop(self):
        model = minimal_builder().build(
            recovery_notification=False, operator_response_time=10.0
        )
        null = model.pomdp.state_index("null")
        repair = model.pomdp.action_index("repair")
        assert model.pomdp.transitions[repair, null, null] == 1.0

    def test_auto_detection_chooses_unnotified(self):
        # "clear" is shared by fault (0.3) and null (1.0): no notification,
        # so the builder must demand t_op.
        with pytest.raises(ModelError, match="operator_response_time"):
            minimal_builder().build()

    def test_notified_build(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "repair", duration=1.0, transitions={"fault": {"null": 1.0}}
        )
        labels = ("alarm", "clear")
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])  # perfectly separating
        builder.set_observation_matrix(labels, matrix)
        model = builder.build()  # auto-detects notification
        assert model.recovery_notification
        assert model.terminate_action is None
        # Null must be absorbing and free under every action.
        null = model.pomdp.state_index("null")
        assert np.all(model.pomdp.transitions[:, null, null] == 1.0)
        assert np.all(model.pomdp.rewards[:, null] == 0.0)


class TestValidation:
    def test_duplicate_state_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("x")
        with pytest.raises(ModelError, match="duplicate"):
            builder.add_state("x")

    def test_duplicate_action_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_action("a", duration=1.0)
        with pytest.raises(ModelError, match="duplicate"):
            builder.add_action("a", duration=1.0)

    def test_negative_rate_cost_rejected(self):
        with pytest.raises(ModelError, match="rate_cost"):
            RecoveryModelBuilder().add_state("x", rate_cost=-1.0)

    def test_null_state_with_cost_rejected(self):
        with pytest.raises(ModelError, match="zero cost"):
            RecoveryModelBuilder().add_state("n", rate_cost=0.5, null=True)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError, match="duration"):
            RecoveryModelBuilder().add_action("a", duration=-1.0)

    def test_unknown_transition_target_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "bad", duration=1.0, transitions={"fault": {"elsewhere": 1.0}}
        )
        labels, matrix = observation_block()
        builder.set_observation_matrix(labels, matrix)
        with pytest.raises(ModelError, match="unknown state"):
            builder.build(recovery_notification=False, operator_response_time=1.0)

    def test_passive_action_changing_state_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "sneaky",
            duration=1.0,
            transitions={"fault": {"null": 1.0}},
            passive=True,
        )
        labels, matrix = observation_block()
        builder.set_observation_matrix(labels, matrix)
        with pytest.raises(ModelError, match="passive"):
            builder.build(recovery_notification=False, operator_response_time=1.0)

    def test_missing_observation_matrix_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "repair", duration=1.0, transitions={"fault": {"null": 1.0}}
        )
        with pytest.raises(ModelError, match="observation"):
            builder.build(recovery_notification=False, operator_response_time=1.0)

    def test_no_states_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_action("a", duration=1.0)
        with pytest.raises(ModelError, match="states"):
            builder.build(recovery_notification=False, operator_response_time=1.0)

    def test_negative_explicit_cost_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "repair",
            duration=1.0,
            transitions={"fault": {"null": 1.0}},
            costs={"fault": -1.0},
        )
        labels, matrix = observation_block()
        builder.set_observation_matrix(labels, matrix)
        with pytest.raises(ModelError, match="magnitude"):
            builder.build(recovery_notification=False, operator_response_time=1.0)

    def test_top_with_notification_rejected(self):
        builder = RecoveryModelBuilder()
        builder.add_state("null", null=True)
        builder.add_state("fault", rate_cost=0.5)
        builder.add_action(
            "repair", duration=1.0, transitions={"fault": {"null": 1.0}}
        )
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        builder.set_observation_matrix(("alarm", "clear"), matrix)
        with pytest.raises(ModelError, match="notification"):
            builder.build(recovery_notification=True, operator_response_time=5.0)

    def test_per_action_observation_override(self):
        builder = minimal_builder()
        labels, matrix = observation_block()
        richer = np.array([[0.0, 1.0], [0.9, 0.1]])
        builder.set_observation_matrix(labels, richer, action="observe")
        model = builder.build(
            recovery_notification=False, operator_response_time=10.0
        )
        observe = model.pomdp.action_index("observe")
        fault = model.pomdp.state_index("fault")
        assert np.isclose(model.pomdp.observations[observe, fault, 0], 0.9)

    def test_override_for_unknown_action_rejected(self):
        builder = minimal_builder()
        labels, matrix = observation_block()
        builder.set_observation_matrix(labels, matrix, action="ghost")
        with pytest.raises(ModelError, match="unknown action"):
            builder.build(recovery_notification=False, operator_response_time=1.0)
