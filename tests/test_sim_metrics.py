"""Tests for per-fault metrics and aggregation."""

import struct

import numpy as np
import pytest

from repro.sim.metrics import (
    EpisodeMetrics,
    episode_fingerprint_bytes,
    metrics_field_names,
    summarize,
)


def episode(**overrides) -> EpisodeMetrics:
    defaults = dict(
        fault_state=1,
        cost=10.0,
        recovery_time=20.0,
        residual_time=15.0,
        algorithm_time=0.002,
        actions=2,
        monitor_calls=5,
        recovered=True,
        terminated=True,
        steps=7,
    )
    defaults.update(overrides)
    return EpisodeMetrics(**defaults)


class TestEpisodeMetrics:
    def test_early_termination_flag(self):
        assert episode(recovered=False).early_termination
        assert not episode().early_termination
        assert not episode(terminated=False, recovered=False).early_termination


class TestSummarize:
    def test_means(self):
        summary = summarize([episode(cost=10.0), episode(cost=30.0)])
        assert summary.episodes == 2
        assert np.isclose(summary.cost, 20.0)
        assert np.isclose(summary.recovery_time, 20.0)

    def test_algorithm_time_reported_in_ms(self):
        summary = summarize([episode(algorithm_time=0.002)])
        assert np.isclose(summary.algorithm_time_ms, 2.0)

    def test_early_and_unrecovered_counts(self):
        episodes = [
            episode(),
            episode(recovered=False),
            episode(recovered=False, terminated=False),
        ]
        summary = summarize(episodes)
        assert summary.early_terminations == 1
        assert summary.unrecovered == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_layout(self):
        summary = summarize([episode()])
        row = summary.as_row("some controller")
        assert row[0] == "some controller"
        assert len(row) == 7


class TestFieldNames:
    def test_contains_table1_columns(self):
        names = metrics_field_names()
        for column in ("cost", "recovery_time", "residual_time",
                       "algorithm_time", "actions", "monitor_calls"):
            assert column in names


class TestEpisodeFingerprint:
    def test_packing_order_and_layout(self):
        """Pin the canonical 58-byte layout: dataclass field order minus
        algorithm_time, ints as <q, floats as <d, bools as one-byte <?.
        The bool check must run before the int check (bool is a subclass
        of int) or recovered/terminated would silently widen to 8 bytes."""
        metrics = episode(
            fault_state=3,
            cost=1.25,
            recovery_time=2.5,
            residual_time=0.75,
            actions=4,
            monitor_calls=6,
            recovered=True,
            terminated=False,
            steps=9,
        )
        expected = b"".join(
            [
                struct.pack("<q", 3),       # fault_state
                struct.pack("<d", 1.25),    # cost
                struct.pack("<d", 2.5),     # recovery_time
                struct.pack("<d", 0.75),    # residual_time
                struct.pack("<q", 4),       # actions
                struct.pack("<q", 6),       # monitor_calls
                struct.pack("<?", True),    # recovered  (1 byte, not <q)
                struct.pack("<?", False),   # terminated (1 byte, not <q)
                struct.pack("<q", 9),       # steps
            ]
        )
        packed = episode_fingerprint_bytes(metrics)
        assert len(packed) == 58
        assert packed == expected

    def test_algorithm_time_excluded(self):
        fast = episode(algorithm_time=0.001)
        slow = episode(algorithm_time=9.999)
        assert episode_fingerprint_bytes(fast) == episode_fingerprint_bytes(slow)

    def test_deterministic_fields_distinguish(self):
        assert episode_fingerprint_bytes(episode(steps=7)) != (
            episode_fingerprint_bytes(episode(steps=8))
        )

    def test_numpy_integers_pack_like_python_ints(self):
        plain = episode(fault_state=5)
        boxed = episode(fault_state=np.int64(5))
        assert episode_fingerprint_bytes(plain) == episode_fingerprint_bytes(boxed)
