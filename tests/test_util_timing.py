"""Tests for repro.util.timing."""

import time

from repro.util.timing import Stopwatch


class TestStopwatch:
    def test_accumulates_time(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.total_seconds >= 0.009
        assert watch.laps == 1

    def test_multiple_laps(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch:
                pass
        assert watch.laps == 3

    def test_mean_seconds(self):
        watch = Stopwatch()
        assert watch.mean_seconds == 0.0
        with watch:
            time.sleep(0.005)
        assert watch.mean_seconds == watch.total_seconds

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.total_seconds == 0.0
        assert watch.laps == 0

    def test_exception_still_records(self):
        watch = Stopwatch()
        try:
            with watch:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert watch.laps == 1
