"""Partially observable MDP substrate.

Implements the POMDP tuple ``(S, A, O, p, q, r)`` of Section 2, the
belief-state machinery of Eqs. 2-4, the finite-depth Max-Avg lookahead tree
of Figure 1(b), a trajectory simulator used by the fault-injection harness,
and Monahan's exact alpha-vector value iteration as a reference solver for
tiny models.
"""

from repro.pomdp.belief import (
    belief_bellman_backup,
    belief_reward,
    next_beliefs,
    observation_probabilities,
    point_belief,
    predicted_belief,
    uniform_belief,
    update_belief,
)
from repro.pomdp.belief_mdp import BeliefMDP, expand_belief_mdp, solve_belief_mdp
from repro.pomdp.exact import ExactSolution, solve_exact
from repro.pomdp.hsvi import HSVISolution, solve_hsvi
from repro.pomdp.model import POMDP
from repro.pomdp.pbvi import PBVISolution, sample_belief_points, solve_pbvi
from repro.pomdp.simulator import POMDPSimulator, StepResult
from repro.pomdp.tree import LeafValue, TreeDecision, expand_tree

__all__ = [
    "BeliefMDP",
    "ExactSolution",
    "HSVISolution",
    "LeafValue",
    "PBVISolution",
    "POMDP",
    "POMDPSimulator",
    "StepResult",
    "TreeDecision",
    "belief_bellman_backup",
    "belief_reward",
    "expand_belief_mdp",
    "expand_tree",
    "next_beliefs",
    "observation_probabilities",
    "point_belief",
    "predicted_belief",
    "sample_belief_points",
    "solve_belief_mdp",
    "solve_exact",
    "solve_hsvi",
    "solve_pbvi",
    "uniform_belief",
    "update_belief",
]
