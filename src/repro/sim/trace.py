"""Step-by-step episode traces for debugging and post-mortems.

The campaign driver reports only per-fault aggregates (Table 1's columns).
When a recovery goes wrong — or when explaining why the controller chose a
particular restart — operators need the step-level story: which action ran,
what the monitors said, how the belief moved, what it cost.  This module
runs a single instrumented episode and records exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controllers.base import RecoveryController
from repro.sim.environment import NO_OBSERVATION, RecoveryEnvironment
from repro.sim.metrics import EpisodeMetrics
from repro.util.tables import render_table


@dataclass(frozen=True)
class TraceStep:
    """One executed step of a traced episode.

    Attributes:
        index: step number, from 0.
        action: action index the controller chose.
        action_label: its display name.
        observation: sampled observation index
            (:data:`~repro.sim.environment.NO_OBSERVATION` when no
            monitors ran).
        observation_label: its display name ("" when no monitors ran).
        true_state_after: ground-truth state after the action.
        reward: single-step reward incurred.
        time_after: wall-clock seconds elapsed at the end of the step.
        recovered_probability: the *controller's* post-update P[recovered].
        tree_value: root value of the controller's lookahead, when any.
    """

    index: int
    action: int
    action_label: str
    observation: int
    observation_label: str
    true_state_after: int
    reward: float
    time_after: float
    recovered_probability: float
    tree_value: float | None


@dataclass(frozen=True)
class EpisodeTrace:
    """A full episode: its steps plus the usual per-fault metrics."""

    fault_label: str
    steps: tuple[TraceStep, ...]
    metrics: EpisodeMetrics

    def render(self) -> str:
        """Human-readable table of the episode."""
        rows = [
            [
                step.index,
                step.action_label,
                step.observation_label or "-",
                f"{step.recovered_probability:.4f}",
                step.reward,
                step.time_after,
            ]
            for step in self.steps
        ]
        table = render_table(
            ["Step", "Action", "Observation", "P[recovered]", "Reward",
             "t (s)"],
            rows,
            title=f"Recovery trace for {self.fault_label}",
        )
        outcome = (
            "recovered" if self.metrics.recovered else "NOT recovered"
        )
        return (
            f"{table}\n"
            f"Outcome: {outcome}, cost {self.metrics.cost:.2f}, "
            f"residual {self.metrics.residual_time:.1f} s"
        )


def trace_episode(
    controller: RecoveryController,
    environment: RecoveryEnvironment,
    fault_state: int,
    max_steps: int = 200,
) -> EpisodeTrace:
    """Run one instrumented episode (same loop as ``run_episode``).

    The metrics in the result match what ``run_episode`` would have
    produced for the same seed; the trace is a superset of information.
    """
    model = controller.model
    pomdp = model.pomdp
    uses_monitors = getattr(controller, "uses_monitors", True)
    environment.inject(fault_state)
    controller.reset()
    controller.stopwatch.reset()
    controller.sync_true_state(environment.state)

    passive = np.flatnonzero(model.passive_actions)
    if uses_monitors and passive.size:
        controller.observe(int(passive[0]), environment.initial_observation())

    steps: list[TraceStep] = []
    actions = 0
    monitor_calls = 0
    terminated = False
    for index in range(max_steps):
        decision = controller.decide()
        if decision.is_terminate:
            terminated = True
            if decision.executes_action and decision.action == model.terminate_action:
                result = environment.execute(decision.action)
                steps.append(
                    TraceStep(
                        index=index,
                        action=decision.action,
                        action_label=pomdp.action_labels[decision.action],
                        observation=NO_OBSERVATION,
                        observation_label="",
                        true_state_after=environment.state,
                        reward=result.reward,
                        time_after=environment.time,
                        recovered_probability=model.recovered_probability(
                            controller.belief
                        ),
                        tree_value=decision.value,
                    )
                )
            break
        result = environment.execute(decision.action)
        if model.recovery_actions[decision.action]:
            actions += 1
        observation_label = ""
        if uses_monitors:
            monitor_calls += 1
            controller.observe(decision.action, result.observation)
            observation_label = pomdp.observation_labels[result.observation]
        controller.sync_true_state(environment.state)
        steps.append(
            TraceStep(
                index=index,
                action=decision.action,
                action_label=pomdp.action_labels[decision.action],
                observation=result.observation if uses_monitors else NO_OBSERVATION,
                observation_label=observation_label,
                true_state_after=environment.state,
                reward=result.reward,
                time_after=environment.time,
                recovered_probability=model.recovered_probability(
                    controller.belief
                ),
                tree_value=decision.value,
            )
        )

    metrics = EpisodeMetrics(
        fault_state=fault_state,
        cost=environment.cost,
        recovery_time=environment.time,
        residual_time=environment.residual_time(),
        algorithm_time=controller.stopwatch.total_seconds,
        actions=actions,
        monitor_calls=monitor_calls,
        recovered=environment.recovered,
        terminated=terminated,
        steps=len([s for s in steps if s.observation >= 0 or s.action >= 0]),
    )
    return EpisodeTrace(
        fault_label=pomdp.state_labels[fault_state],
        steps=tuple(steps),
        metrics=metrics,
    )
