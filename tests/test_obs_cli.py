"""The ``python -m repro.obs`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.obs import SCHEMA_VERSION, session
from repro.obs.__main__ import main
from repro.obs.report import aggregate_stream, format_report


@pytest.fixture()
def run_file(tmp_path):
    """A small schema-valid run with one campaign's worth of events."""
    path = tmp_path / "run.jsonl"
    with session(path) as telemetry:
        telemetry.count("sim.episodes", 2)
        telemetry.count_process("cache.hits", 3)
        telemetry.count_process("cache.builds", 1)
        telemetry.event(
            "campaign_start", controller="bounded", injections=2, chunk_size=32
        )
        telemetry.event("episode_start", episode=0, fault_state=1)
        telemetry.event(
            "episode_end",
            episode=0,
            recovered=True,
            terminated=True,
            steps=3,
            cost=12.5,
        )
        telemetry.event(
            "refine", action=2, added=True, improvement=1.5, set_size=4
        )
        telemetry.event(
            "solver_dispatch", requested="auto", method="direct", n_states=8
        )
        telemetry.event("campaign_end", controller="bounded", episodes=2)
    return path


class TestReport:
    def test_report_command_renders(self, run_file, capsys):
        assert main(["report", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "Bound refinement" in out
        assert "direct" in out

    def test_aggregate_counts_outcomes(self, run_file):
        aggregate = aggregate_stream(run_file)
        report = format_report(aggregate)
        assert "Telemetry report" in report

    def test_report_shows_cache_hit_ratio(self, run_file, capsys):
        main(["report", str(run_file)])
        out = capsys.readouterr().out
        assert "cache" in out.lower()
        assert "75.0%" in out  # 3 hits / 4 lookups


class TestValidate:
    def test_valid_stream_exits_zero(self, run_file, capsys):
        assert main(["validate", str(run_file)]) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_invalid_stream_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        lines = [
            {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION},
            {"event": "decision", "seq": 1},  # missing action/terminate
            {"event": "session_end", "seq": 2},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "missing required fields" in out

    def test_garbage_line_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["validate", str(path)]) == 1
        assert "not JSON" in capsys.readouterr().out

    def test_unsupported_schema_version_flagged(self, tmp_path, capsys):
        path = tmp_path / "future.jsonl"
        lines = [
            {"event": "session_start", "seq": 0, "schema": "repro-obs/v99"},
            {"event": "summary", "seq": 1, "counters": {},
             "process_counters": {}, "gauges": {}, "timers": {}},
            {"event": "session_end", "seq": 2},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert main(["validate", str(path)]) == 1
        assert "unsupported schema" in capsys.readouterr().out

    def test_v1_stream_still_valid(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        lines = [
            {"event": "session_start", "seq": 0, "schema": "repro-obs/v1"},
            {"event": "summary", "seq": 1, "counters": {},
             "process_counters": {}, "gauges": {}, "timers": {}},
            {"event": "session_end", "seq": 2},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert main(["validate", str(path)]) == 0


class TestDegenerateStreams:
    """Satellite regression tests: empty and header-only streams are clean
    (a run killed before its summary is truncated, not corrupt), and a
    missing file is a usage error (exit 2), never a traceback."""

    def test_empty_stream_validates_clean(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["validate", str(path)]) == 0
        assert "schema-valid" in capsys.readouterr().out

    def test_header_only_stream_validates_clean(self, tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text(
            json.dumps(
                {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION}
            )
            + "\n"
        )
        assert main(["validate", str(path)]) == 0

    def test_empty_stream_reports_clean(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        assert capsys.readouterr().out  # renders an (empty) report

    def test_header_only_stream_reports_clean(self, tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text(
            json.dumps(
                {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION}
            )
            + "\n"
        )
        assert main(["report", str(path)]) == 0

    @pytest.mark.parametrize("command", ["report", "validate", "convergence"])
    def test_missing_file_is_usage_error(self, tmp_path, command, capsys):
        assert main([command, str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().out


class TestReportSessionFilter:
    """`report --session ID` narrows a multi-session daemon stream."""

    @pytest.fixture()
    def multi_session_file(self, tmp_path):
        path = tmp_path / "daemon.jsonl"
        events = [
            {"event": "session_start", "seq": 0, "schema": SCHEMA_VERSION},
            {"event": "decision", "seq": 1, "action": 1, "terminate": False,
             "session": "alpha"},
            {"event": "decision", "seq": 2, "action": 0, "terminate": True,
             "session": "beta"},
            {"event": "refine", "seq": 3, "action": 1, "added": True,
             "improvement": 2.0, "set_size": 4},
            {"event": "span", "seq": 4, "name": "controller.decision",
             "span_id": 0, "parent_id": None, "t_start": 0.1,
             "seconds": 0.01, "args": {"session": "alpha"}},
            {"event": "slow_decision", "seq": 5, "session": "beta",
             "seconds": 0.5, "threshold": 0.1},
            {"event": "summary", "seq": 6, "counters": {}, "gauges": {},
             "process_counters": {}, "timers": {}},
            {"event": "session_end", "seq": 7},
        ]
        path.write_text(
            "".join(json.dumps(record) + "\n" for record in events),
            encoding="utf-8",
        )
        return path

    def test_filter_drops_other_sessions_keeps_shared(self, multi_session_file):
        aggregate = aggregate_stream(multi_session_file, session="alpha")
        assert aggregate.kinds.get("decision") == 1
        assert "slow_decision" not in aggregate.kinds  # beta's
        assert aggregate.kinds.get("span") == 1  # alpha's, via span args
        assert aggregate.kinds.get("refine") == 1  # shared state stays
        assert aggregate.session_filter == "alpha"

    def test_unfiltered_sees_everything(self, multi_session_file):
        aggregate = aggregate_stream(multi_session_file)
        assert aggregate.kinds.get("decision") == 2
        assert aggregate.kinds.get("slow_decision") == 1

    def test_cli_flag_and_title(self, multi_session_file, capsys):
        assert main(["report", str(multi_session_file), "--session", "beta"]) == 0
        out = capsys.readouterr().out
        assert "session beta" in out

    def test_multi_session_stream_is_schema_valid(self, multi_session_file):
        assert main(["validate", str(multi_session_file)]) == 0
